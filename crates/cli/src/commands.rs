//! Command implementations.

use std::fs;

use polyfit::prelude::*;
use polyfit::{Extremum, PolyFitMax, PolyFitSum};

/// Parse a batch-query file: one `lo,hi` range per line; `#` comments and
/// blank lines are skipped.
fn parse_ranges(text: &str) -> Result<Vec<(f64, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let parse = |s: Option<&str>| -> Result<f64, String> {
            s.and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| format!("line {}: expected 'lo,hi', got '{line}'", lineno + 1))
        };
        let lo = parse(parts.next())?;
        let hi = parse(parts.next())?;
        out.push((lo, hi));
    }
    if out.is_empty() {
        return Err("batch file contains no ranges".into());
    }
    Ok(out)
}

use crate::args::{Aggregate, Command};
use crate::csv;

/// File-kind sniffing: the serializer's magic bytes.
fn kind_of(bytes: &[u8]) -> Option<&'static str> {
    match bytes.get(..4) {
        Some(b"PFS2") => Some("sum"),
        Some(b"PFM2") => Some("max"),
        _ => None,
    }
}

/// Decode an index file into a trait object: the one place the on-disk
/// format is inspected. Everything downstream dispatches through
/// [`AggregateIndex`].
fn load_index(bytes: &[u8]) -> Result<Box<dyn AggregateIndex>, String> {
    match kind_of(bytes) {
        Some("sum") => Ok(Box::new(PolyFitSum::from_bytes(bytes).map_err(|e| e.to_string())?)),
        Some("max") => Ok(Box::new(PolyFitMax::from_bytes(bytes).map_err(|e| e.to_string())?)),
        _ => Err("not a PolyFit index file".into()),
    }
}

fn backend_of(name: &str) -> FitBackend {
    match name {
        "chebyshev" => FitBackend::ExchangeChebyshev,
        "simplex" => FitBackend::Simplex,
        _ => FitBackend::Exchange,
    }
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Build { input, output, aggregate, eps_abs, degree, backend, threads, stats } => {
            let text =
                fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let mut records = csv::parse_records(&text)?;
            if aggregate == Aggregate::Count {
                for r in &mut records {
                    r.measure = 1.0;
                }
            }
            let config =
                PolyFitConfig { degree, backend: backend_of(&backend), ..Default::default() };
            config.validate().map_err(|e| e.to_string())?;
            // `--threads 0` (the default) resolves to available
            // parallelism inside the build pipeline.
            let opts = BuildOptions::with_threads(threads);
            let (bytes, segments, kind) = match aggregate {
                Aggregate::Sum | Aggregate::Count => {
                    // Lemma 2: δ = ε_abs / 2 for SUM-family queries.
                    let idx = PolyFitSum::build_with(records, eps_abs / 2.0, config, &opts)
                        .map_err(|e| e.to_string())?;
                    // --stats embeds the per-segment summaries so a
                    // reloaded index keeps compaction incremental.
                    (idx.to_bytes_with_stats(stats), idx.num_segments(), "sum")
                }
                Aggregate::Max => {
                    if stats {
                        eprintln!("note: --stats applies to sum/count indexes only; ignored");
                    }
                    // Lemma 4: δ = ε_abs.
                    let idx = PolyFitMax::build_with(records, eps_abs, config, &opts)
                        .map_err(|e| e.to_string())?;
                    (idx.to_bytes(), idx.num_segments(), "max")
                }
                Aggregate::Min => {
                    if stats {
                        eprintln!("note: --stats applies to sum/count indexes only; ignored");
                    }
                    let idx = PolyFitMax::build_min_with(records, eps_abs, config, &opts)
                        .map_err(|e| e.to_string())?;
                    (idx.to_bytes(), idx.num_segments(), "min")
                }
            };
            fs::write(&output, &bytes).map_err(|e| format!("cannot write {output}: {e}"))?;
            println!("built {kind} index: {segments} segments, {} bytes -> {output}", bytes.len());
            Ok(())
        }
        Command::Query { index, lo, hi } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            let idx = load_index(&bytes).map_err(|e| format!("{index} is {e}"))?;
            match idx.query(lo, hi) {
                Some(ans) => println!("{}", ans.value),
                None => println!("NaN  # range outside the key domain"),
            }
            Ok(())
        }
        Command::QueryBatch { index, batch_file } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            let idx = load_index(&bytes).map_err(|e| format!("{index} is {e}"))?;
            let text = fs::read_to_string(&batch_file)
                .map_err(|e| format!("cannot read {batch_file}: {e}"))?;
            let ranges = parse_ranges(&text)?;
            // One sort-and-share pass over the whole file.
            let mut out = String::with_capacity(ranges.len() * 16);
            for ans in idx.query_batch(&ranges) {
                match ans {
                    Some(a) => out.push_str(&format!("{}\n", a.value)),
                    None => out.push_str("NaN\n"),
                }
            }
            print!("{out}");
            Ok(())
        }
        Command::Info { index } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            match kind_of(&bytes) {
                Some("sum") => {
                    let idx = PolyFitSum::from_bytes(&bytes).map_err(|e| e.to_string())?;
                    println!("kind:      SUM/COUNT (CF difference queries)");
                    println!("segments:  {}", idx.num_segments());
                    println!("delta:     {} (answers within 2δ at key endpoints)", idx.delta());
                    println!("domain:    [{}, {}]", idx.domain().0, idx.domain().1);
                    println!("total:     {}", idx.total());
                    println!("file size: {} bytes", bytes.len());
                    match (idx.segment_stats(), idx.segment_stats_summary()) {
                        (Some(stats), Some(s)) => {
                            let mean_mass = stats.iter().map(SegmentStats::mass).sum::<f64>()
                                / stats.len() as f64;
                            println!(
                                "seg stats: spans {}..{} records (mean {:.1}), \
                                 worst residual {:.4} ({:.0}% of δ), \
                                 mass {} ({:.1}/segment)",
                                s.min_span,
                                s.max_span,
                                s.mean_span,
                                s.max_residual,
                                if idx.delta() > 0.0 {
                                    s.max_residual / idx.delta() * 100.0
                                } else {
                                    0.0
                                },
                                s.total_mass,
                                mean_mass,
                            );
                        }
                        _ => println!("seg stats: absent (built without --stats)"),
                    }
                    Ok(())
                }
                Some("max") => {
                    let idx = PolyFitMax::from_bytes(&bytes).map_err(|e| e.to_string())?;
                    match idx.orientation() {
                        Extremum::Max => println!("kind:      MAX (staircase extremum queries)"),
                        Extremum::Min => println!("kind:      MIN (staircase extremum queries)"),
                    }
                    println!("segments:  {}", idx.num_segments());
                    println!("delta:     {} (answers within δ, any endpoints)", idx.delta());
                    println!("domain:    [{}, {}]", idx.domain().0, idx.domain().1);
                    println!("file size: {} bytes", bytes.len());
                    Ok(())
                }
                _ => Err(format!("{index} is not a PolyFit index file")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("polyfit-cli-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn end_to_end_sum_roundtrip() {
        let data = tmp("sum.csv");
        let idx = tmp("sum.pf");
        let rows: String = (0..2000).map(|i| format!("{i},2\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 50"
        )))
        .unwrap())
        .unwrap();
        // Reload and check a query against the exact answer.
        let bytes = fs::read(&idx).unwrap();
        let loaded = PolyFitSum::from_bytes(&bytes).unwrap();
        let approx = loaded.query(99.0, 1099.0);
        assert!((approx - 2000.0).abs() <= 50.0, "approx {approx}");
        run(parse(&argv(&format!("info --index {idx}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("query --index {idx} --lo 99 --hi 1099"))).unwrap()).unwrap();
    }

    #[test]
    fn end_to_end_max_roundtrip() {
        let data = tmp("max.csv");
        let idx = tmp("max.pf");
        let rows: String =
            (0..1000).map(|i| format!("{i},{}\n", 100.0 + (i as f64 * 0.1).sin() * 30.0)).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate max --eps-abs 5"
        )))
        .unwrap())
        .unwrap();
        let bytes = fs::read(&idx).unwrap();
        assert_eq!(kind_of(&bytes), Some("max"));
        let loaded = PolyFitMax::from_bytes(&bytes).unwrap();
        assert!(loaded.query_max(100.0, 900.0).is_some());
    }

    #[test]
    fn min_index_answers_minima_through_query_path() {
        let data = tmp("min.csv");
        let idx = tmp("min.pf");
        // Alternating measures 3 / 9: MIN over any window ≈ 3, MAX ≈ 9.
        let rows: String =
            (0..500).map(|i| format!("{i},{}\n", if i % 2 == 0 { 3 } else { 9 })).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate min --eps-abs 1"
        )))
        .unwrap())
        .unwrap();
        let loaded = load_index(&fs::read(&idx).unwrap()).unwrap();
        let ans = loaded.query(50.0, 400.0).unwrap();
        assert!((ans.value - 3.0).abs() <= 1.0 + 1e-9, "min query answered {}", ans.value);
        run(parse(&argv(&format!("info --index {idx}"))).unwrap()).unwrap();
    }

    #[test]
    fn count_aggregate_forces_unit_measures() {
        let data = tmp("count.csv");
        let idx = tmp("count.pf");
        fs::write(&data, "1,99\n2,99\n3,99\n4,99\n").unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate count --eps-abs 2"
        )))
        .unwrap())
        .unwrap();
        let loaded = PolyFitSum::from_bytes(&fs::read(&idx).unwrap()).unwrap();
        assert!((loaded.total() - 4.0).abs() < 1e-9, "total {}", loaded.total());
    }

    #[test]
    fn query_rejects_non_index_files() {
        let bogus = tmp("bogus.pf");
        fs::write(&bogus, b"hello world").unwrap();
        let err = run(Command::Query { index: bogus, lo: 0.0, hi: 1.0 }).unwrap_err();
        assert!(err.contains("not a PolyFit index"));
    }

    #[test]
    fn build_rejects_missing_input() {
        let err = run(Command::Build {
            input: tmp("does-not-exist.csv"),
            output: tmp("x.pf"),
            aggregate: Aggregate::Sum,
            eps_abs: 1.0,
            degree: 2,
            backend: "exchange".into(),
            threads: 0,
            stats: false,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn stats_flag_embeds_segment_statistics() {
        let data = tmp("stats.csv");
        let lean = tmp("stats-lean.pf");
        let rich = tmp("stats-rich.pf");
        let rows: String = (0..1500).map(|i| format!("{i},3\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {lean} --aggregate sum --eps-abs 40"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {rich} --aggregate sum --eps-abs 40 --stats"
        )))
        .unwrap())
        .unwrap();
        let lean_idx = PolyFitSum::from_bytes(&fs::read(&lean).unwrap()).unwrap();
        let rich_idx = PolyFitSum::from_bytes(&fs::read(&rich).unwrap()).unwrap();
        assert!(lean_idx.segment_stats().is_none(), "default build strips stats");
        let stats = rich_idx.segment_stats().expect("--stats embeds the block");
        assert_eq!(stats.len(), rich_idx.num_segments());
        // Queries agree bitwise regardless of the stats block.
        for i in 0..40 {
            let (l, u) = (i as f64 * 9.0, i as f64 * 9.0 + 300.0);
            assert_eq!(lean_idx.query(l, u).to_bits(), rich_idx.query(l, u).to_bits());
        }
        // `info` renders the summary on both flavours.
        run(parse(&argv(&format!("info --index {rich}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("info --index {lean}"))).unwrap()).unwrap();
    }

    #[test]
    fn threaded_build_and_batch_query_roundtrip() {
        let data = tmp("batch.csv");
        let idx = tmp("batch.pf");
        let ranges = tmp("batch-ranges.csv");
        let rows: String = (0..3000).map(|i| format!("{i},1\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 50 --threads 2"
        )))
        .unwrap())
        .unwrap();
        fs::write(&ranges, "# lo,hi pairs\n99,1099\n1,2\n2000,1000\n").unwrap();
        run(parse(&argv(&format!("query --index {idx} --batch-file {ranges}"))).unwrap()).unwrap();
        // The batch path must agree with the sequential trait query.
        let loaded = load_index(&fs::read(&idx).unwrap()).unwrap();
        let parsed = super::parse_ranges(&fs::read_to_string(&ranges).unwrap()).unwrap();
        let batch = loaded.query_batch(&parsed);
        for (i, &(lo, hi)) in parsed.iter().enumerate() {
            assert_eq!(
                batch[i].map(|a| a.value.to_bits()),
                loaded.query(lo, hi).map(|a| a.value.to_bits())
            );
        }
    }

    #[test]
    fn batch_file_parse_errors_are_reported() {
        assert!(parse_ranges("").is_err());
        assert!(parse_ranges("1,2\nbogus\n").is_err());
        assert_eq!(parse_ranges("# c\n 1 , 2 \n\n3,4\n").unwrap(), vec![(1.0, 2.0), (3.0, 4.0)]);
    }
}
