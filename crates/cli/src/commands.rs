//! Command implementations.

use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use polyfit::prelude::*;
use polyfit::wal::{checkpoint_path, log_path, read_checkpoint, scan_wal};
use polyfit::{atomic_write, Extremum, LayoutLog, PolyFitMax, PolyFitSum};
use polyfit::{AggregateIndex2d, QuadPolyFit};

/// Parse a batch-query file: one `lo,hi` range per line; `#` comments,
/// blank lines, and trailing newlines (including CRLF) are skipped.
///
/// Untrusted input never panics here: malformed rows — missing fields,
/// extra fields, non-numeric values — produce a line-numbered `Err`, and
/// a file with no ranges at all (empty, or nothing but comments) is
/// reported as such instead of handing downstream code an empty batch it
/// did not ask for.
fn parse_ranges(text: &str) -> Result<Vec<(f64, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let parse = |s: Option<&str>| -> Result<f64, String> {
            s.and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| format!("line {}: expected 'lo,hi', got '{line}'", lineno + 1))
        };
        let lo = parse(parts.next())?;
        let hi = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(format!(
                "line {}: expected exactly two fields 'lo,hi', got '{line}'",
                lineno + 1
            ));
        }
        out.push((lo, hi));
    }
    if out.is_empty() {
        let what = if text.trim().is_empty() { "file is empty" } else { "only comments/blanks" };
        return Err(format!("batch file contains no ranges ({what})"));
    }
    Ok(out)
}

use crate::args::{Aggregate, Command};
use crate::csv;

/// File-kind sniffing: the serializer's magic bytes.
fn kind_of(bytes: &[u8]) -> Option<&'static str> {
    match bytes.get(..4) {
        Some(b"PFS2") => Some("sum"),
        Some(b"PFM2") => Some("max"),
        Some(b"PFD2") => Some("dynamic"),
        Some(b"PFQ1") => Some("quad"),
        _ => None,
    }
}

/// Parse a 2-D batch-query file: one `u_lo,u_hi,v_lo,v_hi` rectangle per
/// line, with the same comment/blank/line-number conventions as
/// [`parse_ranges`].
fn parse_rects(text: &str) -> Result<Vec<(f64, f64, f64, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let mut parse = |_| -> Result<f64, String> {
            parts.next().and_then(|v| v.trim().parse().ok()).ok_or_else(|| {
                format!("line {}: expected 'u_lo,u_hi,v_lo,v_hi', got '{line}'", lineno + 1)
            })
        };
        let rect = (parse(0)?, parse(1)?, parse(2)?, parse(3)?);
        if parts.next().is_some() {
            return Err(format!(
                "line {}: expected exactly four fields 'u_lo,u_hi,v_lo,v_hi', got '{line}'",
                lineno + 1
            ));
        }
        out.push(rect);
    }
    if out.is_empty() {
        let what = if text.trim().is_empty() { "file is empty" } else { "only comments/blanks" };
        return Err(format!("batch file contains no rectangles ({what})"));
    }
    Ok(out)
}

/// Decode an index file into a trait object: the one place the on-disk
/// format is inspected. Everything downstream dispatches through
/// [`AggregateIndex`]; the `Send + Sync` bound lets `serve` share the
/// same object across worker threads.
fn load_index(bytes: &[u8]) -> Result<Box<dyn AggregateIndex + Send + Sync>, String> {
    match kind_of(bytes) {
        Some("sum") => Ok(Box::new(PolyFitSum::from_bytes(bytes).map_err(|e| e.to_string())?)),
        Some("max") => Ok(Box::new(PolyFitMax::from_bytes(bytes).map_err(|e| e.to_string())?)),
        Some("dynamic") => {
            Ok(Box::new(DynamicPolyFitSum::from_bytes(bytes).map_err(|e| e.to_string())?))
        }
        Some("quad") => Err("a 2-D (PFQ1) index — query it with \
             `query --rect u_lo u_hi v_lo v_hi` or a 4-field batch file"
            .into()),
        _ => Err("not a PolyFit index file".into()),
    }
}

fn backend_of(name: &str) -> FitBackend {
    match name {
        "chebyshev" => FitBackend::ExchangeChebyshev,
        "simplex" => FitBackend::Simplex,
        _ => FitBackend::Exchange,
    }
}

/// Tuning knobs for [`serve_sharded`], bundled so the call site reads as
/// one coherent option block.
struct ShardServeOpts<'a> {
    clients: usize,
    window_us: u64,
    batch_cap: usize,
    shards: usize,
    wal: Option<&'a str>,
}

/// `serve --shards N`: replay the request file through N shared-nothing
/// key-space shards instead of the single deadline-batched loop.
///
/// Sharding needs the record set to partition, and only dynamic (`PFD2`)
/// index files retain one — the compacted base records plus any
/// still-buffered deltas, which the sharded server's dedup-sum ingest
/// folds back into one ground truth. A replay submits no updates, so the
/// wait-free composed snapshot read is a stable oracle: every served
/// answer is verified bitwise against it (same per-shard state, same
/// clip-and-merge composition) before anything is printed.
fn serve_sharded(
    index: &str,
    bytes: &[u8],
    ranges: &[(f64, f64)],
    opts: ShardServeOpts<'_>,
) -> Result<(), String> {
    let ShardServeOpts { clients, window_us, batch_cap, shards, wal } = opts;
    if kind_of(bytes) != Some("dynamic") {
        return Err(format!(
            "{index}: sharded serving needs the record set, which only dynamic (PFD2) \
             index files retain — rebuild with `build --dynamic`, or drop --shards"
        ));
    }
    let dynamic = DynamicPolyFitSum::from_bytes(bytes).map_err(|e| e.to_string())?;
    let mut records: Vec<Record> = dynamic.base_records().to_vec();
    records.extend(dynamic.buffered_entries().into_iter().map(|(k, dm)| Record::new(k, dm)));
    let cfg = ShardConfig {
        shards,
        deadline: Duration::from_micros(window_us),
        max_batch: batch_cap,
        buffer_limit: dynamic.buffer_limit(),
        max_shards: shards.max(16),
        ..Default::default()
    };
    let server = match wal {
        // Durable serving: every shard journals to `<dir>/shard-<id>`
        // and acks only after its batch's group fsync.
        Some(dir) => ShardedServer::start_with_wal(
            records,
            dynamic.delta(),
            dynamic.config(),
            cfg,
            Path::new(dir),
            SyncPolicy::Batch,
        )
        .map_err(|e| e.to_string())?,
        None => ShardedServer::start(records, dynamic.delta(), dynamic.config(), cfg)
            .map_err(|e| e.to_string())?,
    };
    let t0 = Instant::now();
    let mut answers: Vec<Option<ShardServed>> = vec![None; ranges.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let handle = server.handle();
                s.spawn(move || {
                    let mut out = Vec::with_capacity(ranges.len() / clients + 1);
                    let mut i = c;
                    while i < ranges.len() {
                        let (lo, hi) = ranges[i];
                        out.push((i, handle.query_served(lo, hi)));
                        i += clients;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, served) in h.join().expect("serve client panicked") {
                answers[i] = Some(served);
            }
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let control = server.handle();
    let mut max_batch_seen = 0usize;
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        let served = answers[i].as_ref().expect("every request was answered");
        if served.poisoned {
            return Err(format!("request {i} ({lo}, {hi}]: poisoned — a shard worker was lost"));
        }
        let snap = control.snapshot_query(lo, hi);
        if served.value().map(f64::to_bits) != snap.value().map(f64::to_bits) {
            return Err(format!(
                "request {i} ({lo}, {hi}]: served answer diverged from composed snapshot read"
            ));
        }
        max_batch_seen = max_batch_seen.max(served.batch_len);
    }
    let stats = server.shutdown();
    let mut out = String::with_capacity(ranges.len() * 16);
    for served in answers.iter().flatten() {
        match served.value() {
            Some(v) => out.push_str(&format!("{v}\n")),
            None => out.push_str("NaN\n"),
        }
    }
    print!("{out}");
    println!(
        "# served {} requests in {:.3} ms ({:.0} req/s) — {} shards, {} spanning, \
         max batch {max_batch_seen}, bitwise-verified",
        stats.submitted,
        wall * 1e3,
        stats.submitted as f64 / wall,
        stats.shards.len(),
        stats.spanning,
    );
    Ok(())
}

/// `serve --wal <dir>` without shards: the single dynamic serving loop
/// with a journal attached. The loaded index seeds a fresh checkpoint
/// under `<dir>/serve.{ckpt,wal}`; the loop group-commits the log after
/// every update drain, so an acked write is durable before any query
/// from the same window is answered. A file replay submits no updates,
/// which keeps the state stable for the bitwise verification below —
/// `recover` can rebuild this exact state from `<dir>` afterwards.
fn serve_dynamic_wal(
    index: &str,
    bytes: &[u8],
    ranges: &[(f64, f64)],
    clients: usize,
    window_us: u64,
    batch_cap: usize,
    wal_dir: &str,
) -> Result<(), String> {
    if kind_of(bytes) != Some("dynamic") {
        return Err(format!(
            "{index}: WAL-journaled serving mutates a dynamic index, so it needs a \
             dynamic (PFD2) index file — rebuild with `build --dynamic`, or drop --wal"
        ));
    }
    let mut dynamic = DynamicPolyFitSum::from_bytes(bytes).map_err(|e| e.to_string())?;
    dynamic
        .attach_wal(Path::new(wal_dir), "serve", SyncPolicy::Batch, 0)
        .map_err(|e| format!("cannot start journal in {wal_dir}: {e}"))?;
    let server = DynamicServer::start(
        dynamic,
        DynamicServeConfig {
            deadline: Duration::from_micros(window_us),
            max_batch: batch_cap,
            // Frozen during a replay: compaction would re-segment the
            // base mid-run and the bitwise check below compares every
            // served answer against the final quiesced state.
            compaction_budget: 0,
        },
    );
    let t0 = Instant::now();
    let mut answers: Vec<Option<Served>> = vec![None; ranges.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let handle = server.handle();
                s.spawn(move || {
                    let mut out = Vec::with_capacity(ranges.len() / clients + 1);
                    let mut i = c;
                    while i < ranges.len() {
                        let (lo, hi) = ranges[i];
                        out.push((i, handle.query_served(lo, hi)));
                        i += clients;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, served) in h.join().expect("serve client panicked") {
                answers[i] = Some(served);
            }
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let (mut recovered, stats) = server.shutdown();
    let mut max_batch_seen = 0usize;
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        let served = answers[i].expect("every request was answered");
        let direct = AggregateIndex::query(&recovered, lo, hi);
        if served.answer.map(|a| a.value.to_bits()) != direct.map(|a| a.value.to_bits()) {
            return Err(format!(
                "request {i} ({lo}, {hi}]: served answer diverged from direct query"
            ));
        }
        max_batch_seen = max_batch_seen.max(served.batch_len);
    }
    // Final group commit; the journal now covers everything acked.
    recovered.detach_wal().map_err(|e| format!("journal shutdown sync failed: {e}"))?;
    let mut out = String::with_capacity(ranges.len() * 16);
    for served in answers.iter().flatten() {
        match served.answer {
            Some(a) => out.push_str(&format!("{}\n", a.value)),
            None => out.push_str("NaN\n"),
        }
    }
    print!("{out}");
    println!(
        "# served {} requests in {:.3} ms ({:.0} req/s) — journaled to {wal_dir}, \
         {} batches, max batch {max_batch_seen}, bitwise-verified",
        stats.requests,
        wall * 1e3,
        stats.requests as f64 / wall,
        stats.batches,
    );
    Ok(())
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Build {
            input,
            output,
            aggregate,
            eps_abs,
            degree,
            backend,
            threads,
            grid,
            stats,
            dynamic,
        } => {
            let text =
                fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
            if aggregate == Aggregate::Count2d {
                if dynamic {
                    return Err("--dynamic applies to sum/count indexes only".into());
                }
                if stats {
                    eprintln!("note: --stats applies to sum/count indexes only; ignored");
                }
                let points = csv::parse_points2d(&text)?;
                let config = Quad2dConfig {
                    degree,
                    grid_resolution: grid,
                    backend: if backend == "simplex" {
                        Fit2dBackend::Simplex
                    } else {
                        Fit2dBackend::LeastSquares
                    },
                    ..Default::default()
                };
                // Lemma 6: δ = ε_abs / 4 — a rectangle is 4 corner
                // evaluations, each off by at most δ.
                let opts = BuildOptions::with_threads(threads);
                let idx = QuadPolyFit::build_with(&points, eps_abs / 4.0, config, &opts)
                    .map_err(|e| e.to_string())?;
                let bytes = idx.to_bytes();
                atomic_write(Path::new(&output), &bytes)
                    .map_err(|e| format!("cannot write {output}: {e}"))?;
                println!(
                    "built count2d index: {} patches, {} bytes -> {output}",
                    idx.num_leaves(),
                    bytes.len()
                );
                return Ok(());
            }
            let mut records = csv::parse_records(&text)?;
            if aggregate == Aggregate::Count {
                for r in &mut records {
                    r.measure = 1.0;
                }
            }
            let config =
                PolyFitConfig { degree, backend: backend_of(&backend), ..Default::default() };
            config.validate().map_err(|e| e.to_string())?;
            // `--threads 0` (the default) resolves to available
            // parallelism inside the build pipeline.
            let opts = BuildOptions::with_threads(threads);
            if dynamic && !matches!(aggregate, Aggregate::Sum | Aggregate::Count) {
                return Err("--dynamic applies to sum/count indexes only".into());
            }
            let (bytes, segments, kind) = match aggregate {
                Aggregate::Sum | Aggregate::Count if dynamic => {
                    // Dynamic index: retains the record set, so the file
                    // can seed sharded or WAL-journaled serving.
                    let idx = DynamicPolyFitSum::with_options(
                        records,
                        eps_abs / 2.0,
                        config,
                        1024,
                        &opts,
                    )
                    .map_err(|e| e.to_string())?;
                    (idx.to_bytes(), format!("{} records", idx.base_len()), "dynamic")
                }
                Aggregate::Sum | Aggregate::Count => {
                    // Lemma 2: δ = ε_abs / 2 for SUM-family queries.
                    let idx = PolyFitSum::build_with(records, eps_abs / 2.0, config, &opts)
                        .map_err(|e| e.to_string())?;
                    // --stats embeds the per-segment summaries so a
                    // reloaded index keeps compaction incremental.
                    (
                        idx.to_bytes_with_stats(stats),
                        format!("{} segments", idx.num_segments()),
                        "sum",
                    )
                }
                Aggregate::Max => {
                    if stats {
                        eprintln!("note: --stats applies to sum/count indexes only; ignored");
                    }
                    // Lemma 4: δ = ε_abs.
                    let idx = PolyFitMax::build_with(records, eps_abs, config, &opts)
                        .map_err(|e| e.to_string())?;
                    (idx.to_bytes(), format!("{} segments", idx.num_segments()), "max")
                }
                Aggregate::Min => {
                    if stats {
                        eprintln!("note: --stats applies to sum/count indexes only; ignored");
                    }
                    let idx = PolyFitMax::build_min_with(records, eps_abs, config, &opts)
                        .map_err(|e| e.to_string())?;
                    (idx.to_bytes(), format!("{} segments", idx.num_segments()), "min")
                }
                Aggregate::Count2d => unreachable!("count2d builds return above"),
            };
            // Crash-atomic: temp file + fsync + rename + parent-dir
            // fsync, so a crash mid-write never leaves a torn index.
            atomic_write(Path::new(&output), &bytes)
                .map_err(|e| format!("cannot write {output}: {e}"))?;
            println!("built {kind} index: {segments}, {} bytes -> {output}", bytes.len());
            Ok(())
        }
        Command::Query { index, lo, hi } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            let idx = load_index(&bytes).map_err(|e| format!("{index} is {e}"))?;
            match idx.query(lo, hi) {
                Some(ans) => println!("{}", ans.value),
                None => println!("NaN  # range outside the key domain"),
            }
            Ok(())
        }
        Command::QueryRect { index, rect } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            if kind_of(&bytes) != Some("quad") {
                return Err(format!(
                    "{index}: --rect queries need a 2-D (PFQ1) index — build one with \
                     `build --aggregate count2d`"
                ));
            }
            let idx = QuadPolyFit::from_bytes(&bytes).map_err(|e| e.to_string())?;
            let (u_lo, u_hi, v_lo, v_hi) = rect;
            match AggregateIndex2d::query_rect(&idx, u_lo, u_hi, v_lo, v_hi) {
                Some(ans) => println!("{}", ans.value),
                None => println!("NaN  # non-finite rectangle bounds"),
            }
            Ok(())
        }
        Command::QueryBatch { index, batch_file } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            let text = fs::read_to_string(&batch_file)
                .map_err(|e| format!("cannot read {batch_file}: {e}"))?;
            // 2-D indexes take 4-field rectangle rows through the batched
            // sort-and-share sweep; everything else takes `lo,hi` ranges.
            if kind_of(&bytes) == Some("quad") {
                let idx = QuadPolyFit::from_bytes(&bytes).map_err(|e| e.to_string())?;
                let rects = parse_rects(&text)?;
                let mut out = String::with_capacity(rects.len() * 16);
                for ans in AggregateIndex2d::query_batch_rect(&idx, &rects) {
                    match ans {
                        Some(a) => out.push_str(&format!("{}\n", a.value)),
                        None => out.push_str("NaN\n"),
                    }
                }
                print!("{out}");
                return Ok(());
            }
            let idx = load_index(&bytes).map_err(|e| format!("{index} is {e}"))?;
            let ranges = parse_ranges(&text)?;
            // One sort-and-share pass over the whole file.
            let mut out = String::with_capacity(ranges.len() * 16);
            for ans in idx.query_batch(&ranges) {
                match ans {
                    Some(a) => out.push_str(&format!("{}\n", a.value)),
                    None => out.push_str("NaN\n"),
                }
            }
            print!("{out}");
            Ok(())
        }
        Command::Serve {
            index,
            requests,
            clients,
            workers,
            window_us,
            batch_cap,
            shards,
            wal,
            failpoints,
        } => {
            // Arm the requested fault schedule before any server thread
            // starts. Without the `failpoints` feature `configure_str`
            // rejects every arm, so a default build refuses the flag
            // loudly instead of silently serving fault-free.
            for arm in &failpoints {
                polyfit::failpoint::configure_str(arm)
                    .map_err(|e| format!("--failpoint {arm}: {e}"))?;
            }
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            let text = fs::read_to_string(&requests)
                .map_err(|e| format!("cannot read {requests}: {e}"))?;
            let ranges = parse_ranges(&text).map_err(|e| format!("{requests}: {e}"))?;
            if shards >= 1 {
                return serve_sharded(
                    &index,
                    &bytes,
                    &ranges,
                    ShardServeOpts { clients, window_us, batch_cap, shards, wal: wal.as_deref() },
                );
            }
            if let Some(dir) = wal {
                return serve_dynamic_wal(
                    &index, &bytes, &ranges, clients, window_us, batch_cap, &dir,
                );
            }
            let idx = load_index(&bytes).map_err(|e| format!("{index} is {e}"))?;
            let shared: SharedIndex = Arc::from(idx);
            let server = Server::start(
                Arc::clone(&shared),
                ServeConfig {
                    workers,
                    deadline: Duration::from_micros(window_us),
                    max_batch: batch_cap,
                },
            );
            // Clients split the request stream round-robin and hammer the
            // loop concurrently; answers come back tagged with their
            // request position so output stays in file order.
            let t0 = Instant::now();
            let mut answers: Vec<Option<Served>> = vec![None; ranges.len()];
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let handle = server.handle();
                        let ranges = &ranges;
                        s.spawn(move || {
                            let mut out = Vec::with_capacity(ranges.len() / clients + 1);
                            let mut i = c;
                            while i < ranges.len() {
                                let (lo, hi) = ranges[i];
                                out.push((i, handle.query_served(lo, hi)));
                                i += clients;
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, served) in h.join().expect("serve client panicked") {
                        answers[i] = Some(served);
                    }
                }
            });
            let wall = t0.elapsed().as_secs_f64();
            let stats = server.shutdown();
            // Served answers are bitwise-identical to direct queries on
            // the quiesced index — verify before reporting anything.
            let mut max_batch_seen = 0usize;
            for (i, &(lo, hi)) in ranges.iter().enumerate() {
                let served = answers[i].expect("every request was answered");
                let direct = shared.query(lo, hi);
                if served.answer.map(|a| a.value.to_bits()) != direct.map(|a| a.value.to_bits()) {
                    return Err(format!(
                        "request {i} ({lo}, {hi}]: served answer diverged from direct query"
                    ));
                }
                max_batch_seen = max_batch_seen.max(served.batch_len);
            }
            let mut out = String::with_capacity(ranges.len() * 16);
            for served in answers.iter().flatten() {
                match served.answer {
                    Some(a) => out.push_str(&format!("{}\n", a.value)),
                    None => out.push_str("NaN\n"),
                }
            }
            print!("{out}");
            println!(
                "# served {} requests in {:.3} ms ({:.0} req/s) — {} batches, \
                 mean batch {:.1}, max batch {max_batch_seen}, bitwise-verified",
                stats.requests,
                wall * 1e3,
                stats.requests as f64 / wall,
                stats.batches,
                stats.requests as f64 / stats.batches.max(1) as f64,
            );
            Ok(())
        }
        Command::Recover { wal, output } => {
            let dir = Path::new(&wal);
            if LayoutLog::exists(dir) {
                // Sharded WAL: replay the layout lineage, then each
                // surviving shard independently. The recovered server is
                // live (and durable again); shut it down cleanly.
                let (server, reports) =
                    ShardedServer::recover(dir, ShardConfig::default(), SyncPolicy::Batch)
                        .map_err(|e| format!("cannot recover {wal}: {e}"))?;
                for (id, r) in &reports {
                    println!(
                        "shard-{id}: checkpoint seq {}, replayed {} updates + {} swaps \
                         -> head {}{}",
                        r.checkpoint_seq,
                        r.replayed_updates,
                        r.replayed_swaps,
                        r.head_seq,
                        torn_note(r.truncated_bytes),
                    );
                }
                let stats = server.shutdown();
                println!(
                    "recovered {} shards from {wal} (checkpoints + log tails collapsed)",
                    stats.shards.len()
                );
                if output.is_some() {
                    return Err("--output applies to single-journal recovery; sharded state \
                         lives in its per-shard checkpoints under the WAL dir"
                        .into());
                }
                Ok(())
            } else {
                let (index, r) = DynamicPolyFitSum::recover(dir, "serve")
                    .map_err(|e| format!("cannot recover {wal}: {e}"))?;
                println!(
                    "recovered: checkpoint seq {}, replayed {} updates + {} swaps -> head {}{}",
                    r.checkpoint_seq,
                    r.replayed_updates,
                    r.replayed_swaps,
                    r.head_seq,
                    torn_note(r.truncated_bytes),
                );
                println!(
                    "state:     {} base records, {} buffered deltas, {} rebuilds",
                    index.base_len(),
                    index.buffered(),
                    index.rebuilds(),
                );
                if let Some(out) = output {
                    atomic_write(Path::new(&out), &index.to_bytes())
                        .map_err(|e| format!("cannot write {out}: {e}"))?;
                    println!("wrote recovered index -> {out}");
                }
                Ok(())
            }
        }
        Command::Info { index, wal } => {
            let bytes = fs::read(&index).map_err(|e| format!("cannot read {index}: {e}"))?;
            let report: Result<(), String> = match kind_of(&bytes) {
                Some("sum") => {
                    let idx = PolyFitSum::from_bytes(&bytes).map_err(|e| e.to_string())?;
                    println!("kind:      SUM/COUNT (CF difference queries)");
                    println!("segments:  {}", idx.num_segments());
                    println!("delta:     {} (answers within 2δ at key endpoints)", idx.delta());
                    println!("domain:    [{}, {}]", idx.domain().0, idx.domain().1);
                    println!("total:     {}", idx.total());
                    println!("file size: {} bytes", bytes.len());
                    match (idx.segment_stats(), idx.segment_stats_summary()) {
                        (Some(stats), Some(s)) => {
                            let mean_mass = stats.iter().map(SegmentStats::mass).sum::<f64>()
                                / stats.len() as f64;
                            println!(
                                "seg stats: spans {}..{} records (mean {:.1}), \
                                 worst residual {:.4} ({:.0}% of δ), \
                                 mass {} ({:.1}/segment)",
                                s.min_span,
                                s.max_span,
                                s.mean_span,
                                s.max_residual,
                                if idx.delta() > 0.0 {
                                    s.max_residual / idx.delta() * 100.0
                                } else {
                                    0.0
                                },
                                s.total_mass,
                                mean_mass,
                            );
                        }
                        _ => println!("seg stats: absent (built without --stats)"),
                    }
                    Ok(())
                }
                Some("max") => {
                    let idx = PolyFitMax::from_bytes(&bytes).map_err(|e| e.to_string())?;
                    match idx.orientation() {
                        Extremum::Max => println!("kind:      MAX (staircase extremum queries)"),
                        Extremum::Min => println!("kind:      MIN (staircase extremum queries)"),
                    }
                    println!("segments:  {}", idx.num_segments());
                    println!("delta:     {} (answers within δ, any endpoints)", idx.delta());
                    println!("domain:    [{}, {}]", idx.domain().0, idx.domain().1);
                    println!("file size: {} bytes", bytes.len());
                    Ok(())
                }
                Some("dynamic") => {
                    let idx = DynamicPolyFitSum::from_bytes(&bytes).map_err(|e| e.to_string())?;
                    println!("kind:      DYNAMIC SUM (base index + exact update buffer)");
                    println!("base:      {} records", idx.base_len());
                    println!(
                        "buffered:  {} pending deltas (compaction at {})",
                        idx.buffered(),
                        idx.buffer_limit()
                    );
                    println!("rebuilds:  {}", idx.rebuilds());
                    println!("delta:     {} (answers within 2δ at key endpoints)", idx.delta());
                    println!("file size: {} bytes", bytes.len());
                    // Provenance: how this state came to be — compaction
                    // lineage plus the exact buffer still riding on top.
                    println!(
                        "provenance: {} compaction swap(s) folded buffered updates into the \
                         base; {} delta(s) pending on top of {} base records",
                        idx.rebuilds(),
                        idx.buffered(),
                        idx.base_len(),
                    );
                    Ok(())
                }
                Some("quad") => {
                    let idx = QuadPolyFit::from_bytes(&bytes).map_err(|e| e.to_string())?;
                    println!("kind:      2-D COUNT (quadtree patches, 4-corner rectangles)");
                    println!("patches:   {}", idx.num_leaves());
                    println!("delta:     {} (rectangle answers within 4δ)", idx.delta());
                    println!("max error: {} worst certified leaf residual", idx.max_leaf_error());
                    if idx.uncertified_leaves() > 0 {
                        println!(
                            "warning:   {} leaves hit the depth/lattice floor above δ",
                            idx.uncertified_leaves()
                        );
                    }
                    let (u_lo, u_hi, v_lo, v_hi) = idx.bbox();
                    println!("grid:      {g}x{g} lattice", g = idx.grid_resolution());
                    println!("domain:    [{u_lo}, {u_hi}] x [{v_lo}, {v_hi}]");
                    println!("total:     {}", idx.total());
                    println!("arena:     {} bytes compiled", idx.directory().arena_bytes());
                    println!("file size: {} bytes", bytes.len());
                    Ok(())
                }
                _ => Err(format!("{index} is not a PolyFit index file")),
            };
            report?;
            if let Some(dir) = wal {
                wal_status(&dir)?;
            }
            Ok(())
        }
    }
}

/// Human note for a torn/corrupt tail cut during scan or recovery.
fn torn_note(truncated: u64) -> String {
    if truncated == 0 {
        String::new()
    } else {
        format!(" (torn tail: {truncated} bytes truncated)")
    }
}

/// `info --wal <dir>`: report every journal's replay cursor — the
/// checkpoint sequence a recovery would load vs the log head it would
/// replay to. Read-only: torn tails are reported, not truncated.
fn wal_status(dir_str: &str) -> Result<(), String> {
    let dir = Path::new(dir_str);
    // Enumerate journals by their checkpoint files; the sharded layout
    // journal (routing table) is reported separately.
    let mut names: Vec<String> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read WAL dir {dir_str}: {e}"))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?.strip_suffix(".ckpt")?.to_string();
            (name != "layout").then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("{dir_str}: no journal checkpoints found"));
    }
    if LayoutLog::exists(dir) {
        println!("wal:       sharded journal ({} shard segment(s)) in {dir_str}", names.len());
    } else {
        println!("wal:       single journal in {dir_str}");
    }
    for name in &names {
        let ckpt = read_checkpoint(&checkpoint_path(dir, name))
            .map_err(|e| format!("{name}.ckpt: {e}"))?;
        let scan = scan_wal(&log_path(dir, name)).map_err(|e| format!("{name}.wal: {e}"))?;
        // A trailing all-zero region is the log's untouched preallocation
        // (`scan.zero_tail`), not crash damage — only report real garbage.
        let torn = if scan.truncated() { scan.file_len.saturating_sub(scan.valid_len) } else { 0 };
        if scan.head_seq <= ckpt.updates_applied {
            // Checkpoint-only: every surviving log frame is already
            // folded into the checkpoint — recovery replays nothing.
            // Saying so beats printing a zero cursor the reader has to
            // interpret.
            println!(
                "  {name}: checkpoint seq {} ({} rebuilds); checkpoint-only log — nothing \
                 to replay{}",
                ckpt.updates_applied,
                ckpt.rebuilds,
                torn_note(torn),
            );
        } else {
            println!(
                "  {name}: checkpoint seq {} ({} rebuilds); log head {} — {} update(s) to \
                 replay{}",
                ckpt.updates_applied,
                ckpt.rebuilds,
                scan.head_seq,
                scan.head_seq - ckpt.updates_applied,
                torn_note(torn),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("polyfit-cli-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn end_to_end_sum_roundtrip() {
        let data = tmp("sum.csv");
        let idx = tmp("sum.pf");
        let rows: String = (0..2000).map(|i| format!("{i},2\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 50"
        )))
        .unwrap())
        .unwrap();
        // Reload and check a query against the exact answer.
        let bytes = fs::read(&idx).unwrap();
        let loaded = PolyFitSum::from_bytes(&bytes).unwrap();
        let approx = loaded.query(99.0, 1099.0);
        assert!((approx - 2000.0).abs() <= 50.0, "approx {approx}");
        run(parse(&argv(&format!("info --index {idx}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("query --index {idx} --lo 99 --hi 1099"))).unwrap()).unwrap();
    }

    #[test]
    fn end_to_end_max_roundtrip() {
        let data = tmp("max.csv");
        let idx = tmp("max.pf");
        let rows: String =
            (0..1000).map(|i| format!("{i},{}\n", 100.0 + (i as f64 * 0.1).sin() * 30.0)).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate max --eps-abs 5"
        )))
        .unwrap())
        .unwrap();
        let bytes = fs::read(&idx).unwrap();
        assert_eq!(kind_of(&bytes), Some("max"));
        let loaded = PolyFitMax::from_bytes(&bytes).unwrap();
        assert!(loaded.query_max(100.0, 900.0).is_some());
    }

    #[test]
    fn min_index_answers_minima_through_query_path() {
        let data = tmp("min.csv");
        let idx = tmp("min.pf");
        // Alternating measures 3 / 9: MIN over any window ≈ 3, MAX ≈ 9.
        let rows: String =
            (0..500).map(|i| format!("{i},{}\n", if i % 2 == 0 { 3 } else { 9 })).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate min --eps-abs 1"
        )))
        .unwrap())
        .unwrap();
        let loaded = load_index(&fs::read(&idx).unwrap()).unwrap();
        let ans = loaded.query(50.0, 400.0).unwrap();
        assert!((ans.value - 3.0).abs() <= 1.0 + 1e-9, "min query answered {}", ans.value);
        run(parse(&argv(&format!("info --index {idx}"))).unwrap()).unwrap();
    }

    #[test]
    fn count_aggregate_forces_unit_measures() {
        let data = tmp("count.csv");
        let idx = tmp("count.pf");
        fs::write(&data, "1,99\n2,99\n3,99\n4,99\n").unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate count --eps-abs 2"
        )))
        .unwrap())
        .unwrap();
        let loaded = PolyFitSum::from_bytes(&fs::read(&idx).unwrap()).unwrap();
        assert!((loaded.total() - 4.0).abs() < 1e-9, "total {}", loaded.total());
    }

    #[test]
    fn query_rejects_non_index_files() {
        let bogus = tmp("bogus.pf");
        fs::write(&bogus, b"hello world").unwrap();
        let err = run(Command::Query { index: bogus, lo: 0.0, hi: 1.0 }).unwrap_err();
        assert!(err.contains("not a PolyFit index"));
    }

    #[test]
    fn build_rejects_missing_input() {
        let err = run(Command::Build {
            input: tmp("does-not-exist.csv"),
            output: tmp("x.pf"),
            aggregate: Aggregate::Sum,
            eps_abs: 1.0,
            degree: 2,
            backend: "exchange".into(),
            threads: 0,
            grid: 1024,
            stats: false,
            dynamic: false,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn stats_flag_embeds_segment_statistics() {
        let data = tmp("stats.csv");
        let lean = tmp("stats-lean.pf");
        let rich = tmp("stats-rich.pf");
        let rows: String = (0..1500).map(|i| format!("{i},3\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {lean} --aggregate sum --eps-abs 40"
        )))
        .unwrap())
        .unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {rich} --aggregate sum --eps-abs 40 --stats"
        )))
        .unwrap())
        .unwrap();
        let lean_idx = PolyFitSum::from_bytes(&fs::read(&lean).unwrap()).unwrap();
        let rich_idx = PolyFitSum::from_bytes(&fs::read(&rich).unwrap()).unwrap();
        assert!(lean_idx.segment_stats().is_none(), "default build strips stats");
        let stats = rich_idx.segment_stats().expect("--stats embeds the block");
        assert_eq!(stats.len(), rich_idx.num_segments());
        // Queries agree bitwise regardless of the stats block.
        for i in 0..40 {
            let (l, u) = (i as f64 * 9.0, i as f64 * 9.0 + 300.0);
            assert_eq!(lean_idx.query(l, u).to_bits(), rich_idx.query(l, u).to_bits());
        }
        // `info` renders the summary on both flavours.
        run(parse(&argv(&format!("info --index {rich}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("info --index {lean}"))).unwrap()).unwrap();
    }

    #[test]
    fn threaded_build_and_batch_query_roundtrip() {
        let data = tmp("batch.csv");
        let idx = tmp("batch.pf");
        let ranges = tmp("batch-ranges.csv");
        let rows: String = (0..3000).map(|i| format!("{i},1\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 50 --threads 2"
        )))
        .unwrap())
        .unwrap();
        fs::write(&ranges, "# lo,hi pairs\n99,1099\n1,2\n2000,1000\n").unwrap();
        run(parse(&argv(&format!("query --index {idx} --batch-file {ranges}"))).unwrap()).unwrap();
        // The batch path must agree with the sequential trait query.
        let loaded = load_index(&fs::read(&idx).unwrap()).unwrap();
        let parsed = super::parse_ranges(&fs::read_to_string(&ranges).unwrap()).unwrap();
        let batch = loaded.query_batch(&parsed);
        for (i, &(lo, hi)) in parsed.iter().enumerate() {
            assert_eq!(
                batch[i].map(|a| a.value.to_bits()),
                loaded.query(lo, hi).map(|a| a.value.to_bits())
            );
        }
    }

    #[test]
    fn batch_file_parse_errors_are_reported() {
        assert!(parse_ranges("").is_err());
        assert!(parse_ranges("1,2\nbogus\n").is_err());
        assert_eq!(parse_ranges("# c\n 1 , 2 \n\n3,4\n").unwrap(), vec![(1.0, 2.0), (3.0, 4.0)]);
    }

    /// Builds a small SUM index file for the batch/serve regressions.
    fn built_index(name: &str) -> String {
        let data = tmp(&format!("{name}.csv"));
        let idx = tmp(&format!("{name}.pf"));
        let rows: String = (0..1000).map(|i| format!("{i},1\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 20"
        )))
        .unwrap())
        .unwrap();
        idx
    }

    /// Satellite regression: empty files, comment-only files, trailing
    /// newlines/CRLF, and malformed rows each produce a line-numbered
    /// `Err` (or succeed) through the real `query --batch-file` path —
    /// never a panic.
    #[test]
    fn batch_file_edge_cases_error_cleanly() {
        let idx = built_index("batch-edges");
        let run_batch = |name: &str, content: &str| -> Result<(), String> {
            let f = tmp(name);
            fs::write(&f, content).unwrap();
            run(Command::QueryBatch { index: idx.clone(), batch_file: f })
        };
        // Empty file: a specific error, not a panic or silent success.
        let err = run_batch("edge-empty.csv", "").unwrap_err();
        assert!(err.contains("no ranges") && err.contains("empty"), "{err}");
        // Only comments and blank lines.
        let err = run_batch("edge-comments.csv", "# header\n\n   \n# more\n").unwrap_err();
        assert!(err.contains("no ranges"), "{err}");
        // Trailing newlines and CRLF line endings are fine.
        run_batch("edge-trailing.csv", "1,2\n10,900\n\n\n").unwrap();
        run_batch("edge-crlf.csv", "1,2\r\n10,900\r\n").unwrap();
        // Malformed rows carry their 1-based line number.
        let err = run_batch("edge-malformed.csv", "1,2\nbogus\n3,4\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = run_batch("edge-missing.csv", "1,2\n3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = run_batch("edge-extra.csv", "1,2\n\n3,4,5\n").unwrap_err();
        assert!(err.contains("line 3") && err.contains("two fields"), "{err}");
        let err = run_batch("edge-nonnum.csv", "1,x\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn serve_replays_request_file_end_to_end() {
        let idx = built_index("serve-e2e");
        let reqs = tmp("serve-reqs.csv");
        // Proper, reversed, degenerate, and out-of-domain ranges all flow
        // through the serving loop (the bitwise check runs inside `run`).
        fs::write(&reqs, "10,500\n900,100\n# comment\n5,5\n-50,-10\n0,999\n").unwrap();
        run(parse(&argv(&format!(
            "serve --index {idx} --requests {reqs} --clients 2 --workers 2 \
             --window-us 100 --batch-cap 8"
        )))
        .unwrap())
        .unwrap();
        // Malformed request files fail up front with the line number.
        let bad = tmp("serve-bad.csv");
        fs::write(&bad, "1,2\nnope\n").unwrap();
        let err = run(parse(&argv(&format!("serve --index {idx} --requests {bad}"))).unwrap())
            .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn serve_shards_requests_through_dynamic_index_end_to_end() {
        // Sharded serving needs records, so the index file must be a
        // dynamic (PFD2) one — write it through the library, including a
        // few still-buffered updates the sharded ingest must fold in.
        let records: Vec<Record> = (0..1500).map(|i| Record::new(i as f64, 2.0)).collect();
        let mut dynamic =
            DynamicPolyFitSum::new(records, 25.0, PolyFitConfig::default(), 4096).unwrap();
        dynamic.insert(250.5, 7.0);
        dynamic.insert(1000.25, -3.0);
        let idx = tmp("serve-sharded.pfd");
        fs::write(&idx, dynamic.to_bytes()).unwrap();
        let reqs = tmp("serve-sharded-reqs.csv");
        // Point-in-one-shard, spanning, reversed, degenerate, and
        // out-of-domain ranges all flow through the sharded path (the
        // bitwise check against snapshot reads runs inside `run`).
        fs::write(&reqs, "10,300\n900,100\n# comment\n5,5\n-50,-10\n0,1499\n700,800\n").unwrap();
        run(parse(&argv(&format!(
            "serve --index {idx} --requests {reqs} --clients 2 --shards 2 \
             --window-us 100 --batch-cap 8"
        )))
        .unwrap())
        .unwrap();
        // A static index file cannot be sharded — refused with a hint,
        // not a panic.
        let static_idx = built_index("serve-sharded-static");
        let err =
            run(parse(&argv(&format!("serve --index {static_idx} --requests {reqs} --shards 2")))
                .unwrap())
            .unwrap_err();
        assert!(err.contains("PFD2"), "{err}");
        // The dynamic file also flows through info and the loop path.
        run(parse(&argv(&format!("info --index {idx}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("serve --index {idx} --requests {reqs} --clients 2"))).unwrap())
            .unwrap();
    }

    /// Fresh WAL directory for a CLI durability test.
    fn wal_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join("polyfit-cli-wal-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn build_dynamic_serve_wal_recover_roundtrip() {
        // The full CLI durability cycle: build --dynamic, serve --wal,
        // recover, recover --output — the recovered file is bitwise the
        // served state (a pure query replay applies no updates).
        let data = tmp("wal-cycle.csv");
        let idx = tmp("wal-cycle.pfd");
        let rows: String = (0..1200).map(|i| format!("{i},2\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 30 --dynamic"
        )))
        .unwrap())
        .unwrap();
        let bytes = fs::read(&idx).unwrap();
        assert_eq!(kind_of(&bytes), Some("dynamic"), "--dynamic writes a PFD2 file");

        let reqs = tmp("wal-cycle-reqs.csv");
        fs::write(&reqs, "10,500\n900,100\n5,5\n-50,-10\n0,1199\n").unwrap();
        let wal = wal_dir("cycle");
        run(parse(&argv(&format!(
            "serve --index {idx} --requests {reqs} --clients 2 --wal {wal}"
        )))
        .unwrap())
        .unwrap();
        // The journal now exists: info --wal reports its replay cursor,
        // and recover rebuilds the exact served state.
        run(parse(&argv(&format!("info --index {idx} --wal {wal}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("recover --wal {wal}"))).unwrap()).unwrap();
        let out = tmp("wal-cycle-recovered.pfd");
        run(parse(&argv(&format!("recover --wal {wal} --output {out}"))).unwrap()).unwrap();
        let recovered = fs::read(&out).unwrap();
        assert_eq!(recovered, bytes, "recovered index is bitwise the served state");

        // --wal refuses static index files with a hint, not a panic.
        let static_idx = built_index("wal-static");
        let err =
            run(parse(&argv(&format!("serve --index {static_idx} --requests {reqs} --wal {wal}")))
                .unwrap())
            .unwrap_err();
        assert!(err.contains("PFD2"), "{err}");
    }

    #[test]
    fn sharded_serve_wal_recover_roundtrip() {
        let data = tmp("wal-sharded.csv");
        let idx = tmp("wal-sharded.pfd");
        let rows: String = (0..1000).map(|i| format!("{i},3\n")).collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate sum --eps-abs 30 --dynamic"
        )))
        .unwrap())
        .unwrap();
        let reqs = tmp("wal-sharded-reqs.csv");
        fs::write(&reqs, "10,300\n900,100\n5,5\n0,999\n700,800\n").unwrap();
        let wal = wal_dir("sharded");
        run(parse(&argv(&format!(
            "serve --index {idx} --requests {reqs} --clients 2 --shards 2 --wal {wal}"
        )))
        .unwrap())
        .unwrap();
        // Sharded recovery replays the layout journal + every shard.
        run(parse(&argv(&format!("info --index {idx} --wal {wal}"))).unwrap()).unwrap();
        run(parse(&argv(&format!("recover --wal {wal}"))).unwrap()).unwrap();
        // --output is a single-journal affordance.
        let out = tmp("wal-sharded-out.pfd");
        let err =
            run(parse(&argv(&format!("recover --wal {wal} --output {out}"))).unwrap()).unwrap_err();
        assert!(err.contains("single-journal"), "{err}");
    }

    #[test]
    fn recover_reports_missing_wal_dir() {
        let wal = wal_dir("missing");
        let err = run(parse(&argv(&format!("recover --wal {wal}"))).unwrap()).unwrap_err();
        assert!(err.contains("cannot recover"), "{err}");
    }

    /// Builds a small 2-D (PFQ1) index file from hashed `u,v` rows.
    fn built_quad_index(name: &str) -> String {
        let data = tmp(&format!("{name}.csv"));
        let idx = tmp(&format!("{name}.pfq"));
        let rows: String = (0..2000)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = (h >> 40) as f64 / 167.0;
                let v = ((h >> 16) & 0xFF_FFFF) as f64 / 167_772.0;
                format!("{u},{v}\n")
            })
            .collect();
        fs::write(&data, rows).unwrap();
        run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate count2d --eps-abs 100 \
             --grid 64 --threads 2"
        )))
        .unwrap())
        .unwrap();
        idx
    }

    #[test]
    fn end_to_end_count2d_roundtrip() {
        let idx = built_quad_index("quad-e2e");
        let bytes = fs::read(&idx).unwrap();
        assert_eq!(kind_of(&bytes), Some("quad"), "count2d builds write PFQ1 files");
        // Rect queries, batch rects, and info all flow through `run`.
        run(parse(&argv(&format!("query --index {idx} --rect 10 90 10 90"))).unwrap()).unwrap();
        run(parse(&argv(&format!("info --index {idx}"))).unwrap()).unwrap();
        let rects = tmp("quad-e2e-rects.csv");
        fs::write(&rects, "# u_lo,u_hi,v_lo,v_hi\n10,90,10,90\n50,40,0,100\n5,5,5,5\nnan,1,2,3\n")
            .unwrap();
        run(parse(&argv(&format!("query --index {idx} --batch-file {rects}"))).unwrap()).unwrap();
        // The batch path agrees bitwise with per-rect trait queries.
        let loaded = QuadPolyFit::from_bytes(&bytes).unwrap();
        let parsed = super::parse_rects(&fs::read_to_string(&rects).unwrap()).unwrap();
        let batch = AggregateIndex2d::query_batch_rect(&loaded, &parsed);
        for (i, &(ul, uh, vl, vh)) in parsed.iter().enumerate() {
            assert_eq!(
                batch[i].map(|a| a.value.to_bits()),
                AggregateIndex2d::query_rect(&loaded, ul, uh, vl, vh).map(|a| a.value.to_bits()),
            );
        }
        // The approximation is within the advertised 4δ of exact: the
        // whole-domain rectangle must account for every point.
        let (u_lo, u_hi, v_lo, v_hi) = loaded.bbox();
        let whole = AggregateIndex2d::query_rect(&loaded, u_lo, u_hi, v_lo, v_hi).unwrap();
        assert!((whole.value - 2000.0).abs() <= 4.0 * loaded.delta() + 1e-9, "{}", whole.value);
    }

    #[test]
    fn quad_files_rejected_by_scalar_paths_with_hint() {
        let idx = built_quad_index("quad-reject");
        // Scalar query / serve refuse with a pointer to --rect.
        let err =
            run(parse(&argv(&format!("query --index {idx} --lo 0 --hi 1"))).unwrap()).unwrap_err();
        assert!(err.contains("--rect"), "{err}");
        let reqs = tmp("quad-reject-reqs.csv");
        fs::write(&reqs, "1,2\n").unwrap();
        let err = run(parse(&argv(&format!("serve --index {idx} --requests {reqs}"))).unwrap())
            .unwrap_err();
        assert!(err.contains("PFQ1"), "{err}");
        // And the other direction: --rect against a 1-D file.
        let sum_idx = built_index("quad-reject-sum");
        let err = run(parse(&argv(&format!("query --index {sum_idx} --rect 0 1 0 1"))).unwrap())
            .unwrap_err();
        assert!(err.contains("count2d"), "{err}");
    }

    #[test]
    fn count2d_rejects_dynamic_and_1d_input() {
        let data = tmp("quad-bad.csv");
        fs::write(&data, "1,2\n3,4\n").unwrap();
        let idx = tmp("quad-bad.pfq");
        let err = run(parse(&argv(&format!(
            "build --input {data} --output {idx} --aggregate count2d --eps-abs 10 --dynamic"
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("--dynamic"), "{err}");
    }

    #[test]
    fn rect_batch_file_errors_carry_line_numbers() {
        let idx = built_quad_index("quad-batch-edges");
        let run_batch = |name: &str, content: &str| -> Result<(), String> {
            let f = tmp(name);
            fs::write(&f, content).unwrap();
            run(Command::QueryBatch { index: idx.clone(), batch_file: f })
        };
        let err = run_batch("quad-edge-empty.csv", "").unwrap_err();
        assert!(err.contains("no rectangles") && err.contains("empty"), "{err}");
        let err = run_batch("quad-edge-short.csv", "1,2,3,4\n1,2,3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = run_batch("quad-edge-extra.csv", "\n1,2,3,4,5\n").unwrap_err();
        assert!(err.contains("line 2") && err.contains("four fields"), "{err}");
        let err = run_batch("quad-edge-nonnum.csv", "1,x,3,4\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // Comments, blanks, and CRLF endings are fine.
        run_batch("quad-edge-ok.csv", "# c\r\n1,2,3,4\r\n\r\n5,6,7,8\r\n").unwrap();
    }
}
