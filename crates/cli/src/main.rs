//! `polyfit-cli` — build, inspect, and query PolyFit index files.
//!
//! ```text
//! polyfit-cli build --input data.csv --output idx.pf --aggregate sum --eps-abs 100 [--degree 2] [--threads 4]
//! polyfit-cli query --index idx.pf --lo 10 --hi 500
//! polyfit-cli query --index idx.pf --batch-file ranges.csv
//! polyfit-cli info  --index idx.pf
//! ```
//!
//! Input CSV: one record per line, `key,measure` (or bare `key` for COUNT
//! data, measure defaults to 1). Lines starting with `#` and a single
//! header line of non-numeric text are skipped. Batch files hold one
//! `lo,hi` range per line; answers are served through one sort-and-share
//! `query_batch` sweep and print one per line. `--threads 0` (the
//! default) builds with every available core.

use std::process::ExitCode;

mod args;
mod commands;
mod csv;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
