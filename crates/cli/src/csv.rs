//! Minimal CSV reader for `(key[, measure])` record files and
//! `(u, v[, w])` two-key point files.

use polyfit_exact::dataset::{Point2d, Record};

/// Read records from CSV text: `key,measure` per line; bare `key` lines
/// get measure 1 (COUNT data). `#`-prefixed lines and one non-numeric
/// header line are skipped.
pub fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let key_s = parts.next().expect("splitn yields at least one").trim();
        let measure_s = parts.next().map(str::trim);
        let key: f64 = match key_s.parse() {
            Ok(k) => k,
            Err(_) if lineno == 0 => continue, // header row
            Err(_) => return Err(format!("line {}: invalid key '{key_s}'", lineno + 1)),
        };
        let measure: f64 = match measure_s {
            None | Some("") => 1.0,
            Some(m) => {
                m.parse().map_err(|_| format!("line {}: invalid measure '{m}'", lineno + 1))?
            }
        };
        if !key.is_finite() || !measure.is_finite() {
            return Err(format!("line {}: non-finite value", lineno + 1));
        }
        out.push(Record::new(key, measure));
    }
    if out.is_empty() {
        return Err("no records found in input".into());
    }
    Ok(out)
}

/// Read 2-D points from CSV text: `u,v` per line with an optional third
/// `w` measure column (defaulting to 1 — COUNT data). `#`-prefixed lines
/// and one non-numeric header line are skipped, like [`parse_records`].
pub fn parse_points2d(text: &str) -> Result<Vec<Point2d>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ',');
        let u_s = parts.next().expect("splitn yields at least one").trim();
        let u: f64 = match u_s.parse() {
            Ok(u) => u,
            Err(_) if lineno == 0 => continue, // header row
            Err(_) => return Err(format!("line {}: invalid u '{u_s}'", lineno + 1)),
        };
        let v_s = parts.next().map(str::trim).unwrap_or("");
        let v: f64 = v_s
            .parse()
            .map_err(|_| format!("line {}: expected 'u,v[,w]', got '{line}'", lineno + 1))?;
        let w: f64 = match parts.next().map(str::trim) {
            None | Some("") => 1.0,
            Some(w_s) => {
                w_s.parse().map_err(|_| format!("line {}: invalid w '{w_s}'", lineno + 1))?
            }
        };
        if !u.is_finite() || !v.is_finite() || !w.is_finite() {
            return Err(format!("line {}: non-finite value", lineno + 1));
        }
        out.push(Point2d::new(u, v, w));
    }
    if out.is_empty() {
        return Err("no points found in input".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_measure_pairs() {
        let rs = parse_records("1.5,10\n2.5,20\n").unwrap();
        assert_eq!(rs, vec![Record::new(1.5, 10.0), Record::new(2.5, 20.0)]);
    }

    #[test]
    fn bare_keys_default_measure() {
        let rs = parse_records("3\n4\n").unwrap();
        assert_eq!(rs[0].measure, 1.0);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn skips_header_and_comments() {
        let rs = parse_records("key,measure\n# comment\n1,2\n\n3,4\n").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_records("1,2\nfoo,3\n").is_err());
        assert!(parse_records("1,bar\n").is_err());
        assert!(parse_records("").is_err());
        assert!(parse_records("nan,1\n1,1\n").is_err());
    }

    #[test]
    fn parses_two_key_points() {
        let ps = parse_points2d("1.5,10\n2.5,20,3\n").unwrap();
        assert_eq!(ps, vec![Point2d::new(1.5, 10.0, 1.0), Point2d::new(2.5, 20.0, 3.0)]);
        // Header and comments are skipped.
        let ps = parse_points2d("u,v,w\n# c\n1,2\n").unwrap();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn two_key_garbage_rejected_with_line_numbers() {
        assert!(parse_points2d("").is_err());
        let err = parse_points2d("1,2\n3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_points2d("1,2\n3,x\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_points2d("1,2,inf\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
