//! Minimal CSV reader for `(key[, measure])` record files.

use polyfit_exact::dataset::Record;

/// Read records from CSV text: `key,measure` per line; bare `key` lines
/// get measure 1 (COUNT data). `#`-prefixed lines and one non-numeric
/// header line are skipped.
pub fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let key_s = parts.next().expect("splitn yields at least one").trim();
        let measure_s = parts.next().map(str::trim);
        let key: f64 = match key_s.parse() {
            Ok(k) => k,
            Err(_) if lineno == 0 => continue, // header row
            Err(_) => return Err(format!("line {}: invalid key '{key_s}'", lineno + 1)),
        };
        let measure: f64 = match measure_s {
            None | Some("") => 1.0,
            Some(m) => {
                m.parse().map_err(|_| format!("line {}: invalid measure '{m}'", lineno + 1))?
            }
        };
        if !key.is_finite() || !measure.is_finite() {
            return Err(format!("line {}: non-finite value", lineno + 1));
        }
        out.push(Record::new(key, measure));
    }
    if out.is_empty() {
        return Err("no records found in input".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_measure_pairs() {
        let rs = parse_records("1.5,10\n2.5,20\n").unwrap();
        assert_eq!(rs, vec![Record::new(1.5, 10.0), Record::new(2.5, 20.0)]);
    }

    #[test]
    fn bare_keys_default_measure() {
        let rs = parse_records("3\n4\n").unwrap();
        assert_eq!(rs[0].measure, 1.0);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn skips_header_and_comments() {
        let rs = parse_records("key,measure\n# comment\n1,2\n\n3,4\n").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_records("1,2\nfoo,3\n").is_err());
        assert!(parse_records("1,bar\n").is_err());
        assert!(parse_records("").is_err());
        assert!(parse_records("nan,1\n1,1\n").is_err());
    }
}
