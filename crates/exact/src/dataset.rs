//! Record vocabulary and dataset preparation shared by every index.
//!
//! The paper assumes distinct keys and non-negative measures
//! (Section III-A). Real datasets contain duplicates, so we fold them
//! before indexing: [`dedup_sum`] for SUM/COUNT targets (duplicate measures
//! add) and [`dedup_max`] for MAX/MIN targets (duplicates keep the
//! extremum — both, so MIN queries stay exact on the same structure).

/// A single `(key, measure)` record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Record {
    /// Search key (range predicates select on this).
    pub key: f64,
    /// Aggregated measure.
    pub measure: f64,
}

impl Record {
    /// Convenience constructor.
    pub fn new(key: f64, measure: f64) -> Self {
        Record { key, measure }
    }
}

/// A 2-D point with two keys and a measure (two-key extension,
/// Definition 4; COUNT uses `measure = 1`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point2d {
    /// First key (e.g. longitude).
    pub u: f64,
    /// Second key (e.g. latitude).
    pub v: f64,
    /// Measure.
    pub w: f64,
}

impl Point2d {
    /// Convenience constructor.
    pub fn new(u: f64, v: f64, w: f64) -> Self {
        Point2d { u, v, w }
    }
}

/// Sort records ascending by key. Total order is safe because keys are
/// required to be finite.
///
/// # Panics
/// Panics if any key is non-finite.
pub fn sort_records(records: &mut [Record]) {
    assert!(
        records.iter().all(|r| r.key.is_finite() && r.measure.is_finite()),
        "records must have finite keys and measures"
    );
    records.sort_by(|a, b| a.key.partial_cmp(&b.key).expect("finite keys compare"));
}

/// Fold duplicate keys by summing their measures. Input must be sorted.
pub fn dedup_sum(records: Vec<Record>) -> Vec<Record> {
    fold_duplicates(records, |acc, m| acc + m)
}

/// Fold duplicate keys by keeping the maximum measure. Input must be sorted.
pub fn dedup_max(records: Vec<Record>) -> Vec<Record> {
    fold_duplicates(records, f64::max)
}

fn fold_duplicates(records: Vec<Record>, fold: impl Fn(f64, f64) -> f64) -> Vec<Record> {
    debug_assert!(
        records.windows(2).all(|w| w[0].key <= w[1].key),
        "records must be sorted before deduplication"
    );
    let mut out: Vec<Record> = Vec::with_capacity(records.len());
    for r in records {
        match out.last_mut() {
            Some(last) if last.key == r.key => last.measure = fold(last.measure, r.measure),
            _ => out.push(r),
        }
    }
    out
}

/// Binary search over sorted keys: number of keys `≤ x` (the inclusive
/// rank used by cumulative functions). Shared helper so every structure
/// agrees on boundary behaviour.
#[inline]
pub fn rank_inclusive(keys: &[f64], x: f64) -> usize {
    keys.partition_point(|&k| k <= x)
}

/// Number of keys `< x` (exclusive rank).
#[inline]
pub fn rank_exclusive(keys: &[f64], x: f64) -> usize {
    keys.partition_point(|&k| k < x)
}

/// Batched ranks with a shared cursor: `out[i]` equals
/// `rank_inclusive(keys, queries[i])` (or `rank_exclusive` when
/// `inclusive` is false) for every query, computed by sorting the queries
/// once and galloping a single forward cursor over `keys`. Total cost
/// `O(m log m + m log(n/m))` instead of `m` independent `O(log n)`
/// searches — the sort-and-share kernel of the batched query path.
pub fn batch_ranks(keys: &[f64], queries: &[f64], inclusive: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..queries.len()).collect();
    order.sort_unstable_by(|&a, &b| queries[a].total_cmp(&queries[b]));
    let mut out = vec![0usize; queries.len()];
    let mut pos = 0usize;
    for &qi in &order {
        let x = queries[qi];
        if x.is_nan() {
            // `partition_point(k ≤ NaN)` is 0; don't move the cursor.
            continue;
        }
        pos = if inclusive { gallop(keys, pos, |k| k <= x) } else { gallop(keys, pos, |k| k < x) };
        out[qi] = pos;
    }
    out
}

/// Batched half-open range SUM over an inclusive prefix-sum
/// representation (`cum[i]` = Σ measures of records `0..=i`): the shared
/// kernel of `KeyCumulativeArray::range_sum_batch` and
/// `BPlusTree::range_sum_batch`, bitwise identical to evaluating
/// `CF(uq) − CF(lq)` per range with [`rank_inclusive`].
pub(crate) fn range_sum_batch_prefix(keys: &[f64], cum: &[f64], ranges: &[(f64, f64)]) -> Vec<f64> {
    let endpoints: Vec<f64> = ranges.iter().flat_map(|&(lq, uq)| [lq, uq]).collect();
    let ranks = batch_ranks(keys, &endpoints, true);
    let cf_of = |rank: usize| if rank == 0 { 0.0 } else { cum[rank - 1] };
    ranges
        .iter()
        .enumerate()
        .map(
            |(q, &(lq, uq))| {
                if lq >= uq {
                    0.0
                } else {
                    cf_of(ranks[2 * q + 1]) - cf_of(ranks[2 * q])
                }
            },
        )
        .collect()
}

/// First index at which `pred` turns false, given that it already holds
/// for every key before `from` (the ascending-sweep invariant). Identical
/// result to `keys.partition_point(pred)`.
fn gallop(keys: &[f64], from: usize, pred: impl Fn(f64) -> bool) -> usize {
    let n = keys.len();
    if from >= n || !pred(keys[from]) {
        return from;
    }
    // pred holds at `lo`; double the stride until it breaks or we run out.
    let mut lo = from;
    let mut step = 1usize;
    while lo + step < n && pred(keys[lo + step]) {
        lo += step;
        step = step.saturating_mul(2);
    }
    let hi = (lo + step).min(n);
    lo + 1 + keys[lo + 1..hi].partition_point(|&k| pred(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_ranks_match_per_query_ranks() {
        let keys: Vec<f64> = vec![1.0, 1.0, 2.0, 4.0, 4.0, 4.0, 7.0, 9.0];
        let queries = vec![5.0, -1.0, 4.0, 4.0, 9.0, 0.5, 100.0, 1.0, 7.0, 6.999, f64::NAN, 2.0];
        let incl = batch_ranks(&keys, &queries, true);
        let excl = batch_ranks(&keys, &queries, false);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(incl[i], rank_inclusive(&keys, q), "inclusive rank of {q}");
            assert_eq!(excl[i], rank_exclusive(&keys, q), "exclusive rank of {q}");
        }
    }

    #[test]
    fn batch_ranks_empty_inputs() {
        assert!(batch_ranks(&[], &[1.0, 2.0], true).iter().all(|&r| r == 0));
        assert!(batch_ranks(&[1.0], &[], true).is_empty());
    }

    #[test]
    fn sorting_orders_by_key() {
        let mut rs = vec![Record::new(3.0, 1.0), Record::new(1.0, 2.0), Record::new(2.0, 3.0)];
        sort_records(&mut rs);
        let keys: Vec<f64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_key_panics() {
        let mut rs = vec![Record::new(f64::NAN, 1.0)];
        sort_records(&mut rs);
    }

    #[test]
    fn dedup_sum_folds() {
        let rs = vec![Record::new(1.0, 2.0), Record::new(1.0, 3.0), Record::new(2.0, 1.0)];
        let out = dedup_sum(rs);
        assert_eq!(out, vec![Record::new(1.0, 5.0), Record::new(2.0, 1.0)]);
    }

    #[test]
    fn dedup_max_keeps_extremum() {
        let rs = vec![Record::new(1.0, 2.0), Record::new(1.0, 7.0), Record::new(1.0, 3.0)];
        let out = dedup_max(rs);
        assert_eq!(out, vec![Record::new(1.0, 7.0)]);
    }

    #[test]
    fn dedup_empty() {
        assert!(dedup_sum(Vec::new()).is_empty());
    }

    #[test]
    fn ranks_at_boundaries() {
        let keys = [1.0, 2.0, 2.0, 5.0];
        assert_eq!(rank_inclusive(&keys, 0.5), 0);
        assert_eq!(rank_inclusive(&keys, 2.0), 3);
        assert_eq!(rank_exclusive(&keys, 2.0), 1);
        assert_eq!(rank_inclusive(&keys, 5.0), 4);
        assert_eq!(rank_inclusive(&keys, 9.0), 4);
        assert_eq!(rank_exclusive(&keys, 1.0), 0);
    }
}
