//! Key-cumulative array (paper Section III-B1, Fig. 3).
//!
//! A prefix-sum array over *floating-point* keys: unlike the classic
//! integer prefix-sum \[29\], lookups binary-search the sorted key array, so
//! arbitrary real query endpoints are supported in `O(log n)`.
//!
//! This structure is simultaneously:
//! * the exact method for range SUM/COUNT queries,
//! * the materialisation of the cumulative function `CF_sum(k)` that
//!   PolyFit and the learned-index baselines fit, and
//! * the fallback when a relative-error certificate fails (Section V-A).

use crate::dataset::{rank_exclusive, rank_inclusive, Record};

/// Sorted keys with inclusive cumulative measure sums.
#[derive(Clone, Debug)]
pub struct KeyCumulativeArray {
    keys: Vec<f64>,
    /// `cum[i]` = Σ measures of records `0..=i`.
    cum: Vec<f64>,
}

impl KeyCumulativeArray {
    /// Build from records sorted by key (duplicates allowed — they simply
    /// occupy adjacent slots; fold them first if distinct keys are needed).
    ///
    /// # Panics
    /// Panics if records are not sorted.
    pub fn new(records: &[Record]) -> Self {
        assert!(records.windows(2).all(|w| w[0].key <= w[1].key), "records must be sorted by key");
        let mut keys = Vec::with_capacity(records.len());
        let mut cum = Vec::with_capacity(records.len());
        let mut acc = 0.0;
        for r in records {
            acc += r.measure;
            keys.push(r.key);
            cum.push(acc);
        }
        KeyCumulativeArray { keys, cum }
    }

    /// Build a COUNT-flavoured array (every measure treated as 1).
    pub fn counting(keys_sorted: &[f64]) -> Self {
        let records: Vec<Record> = keys_sorted.iter().map(|&k| Record::new(k, 1.0)).collect();
        KeyCumulativeArray::new(&records)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the array holds no records.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted key slice (used by index builders to enumerate the
    /// cumulative function's breakpoints).
    pub fn keys(&self) -> &[f64] {
        &self.keys
    }

    /// Inclusive cumulative sums aligned with [`Self::keys`].
    pub fn cumulative(&self) -> &[f64] {
        &self.cum
    }

    /// The cumulative function `CF(k) = Σ measures with key ≤ k`
    /// (paper Eq. 4). `O(log n)`.
    pub fn cf(&self, k: f64) -> f64 {
        match rank_inclusive(&self.keys, k) {
            0 => 0.0,
            i => self.cum[i - 1],
        }
    }

    /// Cumulative sum over keys strictly below `k`.
    pub fn cf_exclusive(&self, k: f64) -> f64 {
        match rank_exclusive(&self.keys, k) {
            0 => 0.0,
            i => self.cum[i - 1],
        }
    }

    /// Exact range SUM over the half-open range `(lq, uq]` — the paper's
    /// `CF(uq) − CF(lq)` (Eq. 5). Returns 0 for inverted ranges.
    pub fn range_sum(&self, lq: f64, uq: f64) -> f64 {
        if lq >= uq {
            return 0.0;
        }
        self.cf(uq) - self.cf(lq)
    }

    /// Batched exact range SUM over half-open ranges, bitwise identical
    /// to per-range [`Self::range_sum`] calls. All `2m` endpoints share
    /// one sorted galloping sweep of the key array
    /// ([`crate::dataset::batch_ranks`]).
    pub fn range_sum_batch(&self, ranges: &[(f64, f64)]) -> Vec<f64> {
        crate::dataset::range_sum_batch_prefix(&self.keys, &self.cum, ranges)
    }

    /// Exact range SUM over the closed range `[lq, uq]`.
    pub fn range_sum_closed(&self, lq: f64, uq: f64) -> f64 {
        if lq > uq {
            return 0.0;
        }
        self.cf(uq) - self.cf_exclusive(lq)
    }

    /// Total sum of all measures.
    pub fn total(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// Heap size of the structure in bytes (key + cumulative arrays); used
    /// by the index-size experiment (paper Fig. 19).
    pub fn size_bytes(&self) -> usize {
        (self.keys.len() + self.cum.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KeyCumulativeArray {
        let records = vec![
            Record::new(1.0, 10.0),
            Record::new(2.0, 20.0),
            Record::new(4.0, 5.0),
            Record::new(8.0, 40.0),
        ];
        KeyCumulativeArray::new(&records)
    }

    #[test]
    fn cf_at_breakpoints() {
        let kca = sample();
        assert_eq!(kca.cf(0.5), 0.0);
        assert_eq!(kca.cf(1.0), 10.0);
        assert_eq!(kca.cf(3.0), 30.0);
        assert_eq!(kca.cf(4.0), 35.0);
        assert_eq!(kca.cf(100.0), 75.0);
    }

    #[test]
    fn half_open_range_sum() {
        let kca = sample();
        // (1, 4] picks keys 2 and 4.
        assert_eq!(kca.range_sum(1.0, 4.0), 25.0);
        // (0, 1] picks key 1 only.
        assert_eq!(kca.range_sum(0.0, 1.0), 10.0);
        assert_eq!(kca.range_sum(8.0, 9.0), 0.0);
    }

    #[test]
    fn closed_range_sum() {
        let kca = sample();
        // [1, 4] includes key 1.
        assert_eq!(kca.range_sum_closed(1.0, 4.0), 35.0);
        assert_eq!(kca.range_sum_closed(4.0, 4.0), 5.0);
        assert_eq!(kca.range_sum_closed(5.0, 7.0), 0.0);
    }

    #[test]
    fn inverted_range_is_zero() {
        let kca = sample();
        assert_eq!(kca.range_sum(5.0, 1.0), 0.0);
        assert_eq!(kca.range_sum_closed(5.0, 1.0), 0.0);
    }

    #[test]
    fn counting_flavour() {
        let kca = KeyCumulativeArray::counting(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(kca.range_sum(1.0, 10.0), 3.0);
        assert_eq!(kca.total(), 4.0);
    }

    #[test]
    fn empty_array() {
        let kca = KeyCumulativeArray::new(&[]);
        assert!(kca.is_empty());
        assert_eq!(kca.cf(1.0), 0.0);
        assert_eq!(kca.range_sum(0.0, 1.0), 0.0);
        assert_eq!(kca.total(), 0.0);
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let records = vec![Record::new(1.0, 1.0), Record::new(1.0, 2.0), Record::new(2.0, 3.0)];
        let kca = KeyCumulativeArray::new(&records);
        assert_eq!(kca.cf(1.0), 3.0);
        assert_eq!(kca.range_sum(0.0, 1.0), 3.0);
    }

    #[test]
    fn brute_force_agreement() {
        let records: Vec<Record> =
            (0..200).map(|i| Record::new(i as f64 * 0.7, (i % 7) as f64)).collect();
        let kca = KeyCumulativeArray::new(&records);
        for &(l, u) in &[(0.0, 50.0), (10.0, 10.5), (-5.0, 300.0), (70.0, 70.0)] {
            let brute: f64 =
                records.iter().filter(|r| r.key > l && r.key <= u).map(|r| r.measure).sum();
            assert_eq!(kca.range_sum(l, u), brute);
        }
    }

    #[test]
    fn size_accounting() {
        let kca = sample();
        assert_eq!(kca.size_bytes(), 8 * 8);
    }
}
