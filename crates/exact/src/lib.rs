//! # polyfit-exact — exact range-aggregate substrates
//!
//! The exact data structures that PolyFit's paper builds on, compares
//! against, and falls back to when a relative-error certificate fails:
//!
//! * [`dataset`] — the `(key, measure)` record vocabulary, presorting and
//!   duplicate-key folding shared by every index in the workspace, and the
//!   **query semantics** used throughout (see below).
//! * [`kca`] — the key-cumulative array (paper Fig. 3): a floating-key
//!   prefix-sum answering exact range SUM/COUNT in `O(log n)`.
//! * [`aggtree`] — an implicit segment tree with per-node aggregates
//!   (paper Fig. 4): exact range MAX/MIN in `O(log n)`.
//! * [`artree`] — a bulk-loaded (STR) aggregate R-tree over 2-D points
//!   (the aR-tree comparator \[46\]): exact 2-D range COUNT/MAX.
//! * [`btree`] — a bulk-loaded in-memory B+-tree with rank queries, the
//!   substrate for the sampled S-tree heuristic.
//!
//! ## Query semantics
//!
//! For SUM/COUNT the paper evaluates `CF(uq) − CF(lq)` with the *inclusive*
//! cumulative function `CF(k) = R(D, (−∞, k])`. That difference equals the
//! aggregate over the **half-open key range `(lq, uq]`**. Every method in
//! this workspace — exact, learned, and PolyFit itself — implements this
//! same half-open convention, so comparisons and error guarantees are
//! apples-to-apples. The closed range `[lq, uq]` is recovered by evaluating
//! at `prev(lq)` (the largest key strictly below `lq`), which
//! [`kca::KeyCumulativeArray::range_sum_closed`] does for convenience.
//!
//! For MAX/MIN the paper approximates the step function `DF_max(k)`
//! (Eq. 6), whose maximum over `[lq, uq]` equals the maximum measure over
//! records with key in `[pred(lq), uq]` where `pred(lq)` is the largest key
//! `≤ lq`. When query endpoints coincide with existing keys — how the
//! paper generates workloads — this equals the plain record-range maximum.
//! [`aggtree::AggTree`] exposes both (`range_max` for function semantics,
//! `range_max_records` for record semantics).

pub mod aggtree;
pub mod artree;
pub mod btree;
pub mod dataset;
pub mod kca;

pub use aggtree::AggTree;
pub use artree::ARTree;
pub use btree::BPlusTree;
pub use dataset::{batch_ranks, dedup_max, dedup_sum, sort_records, Point2d, Record};
pub use kca::KeyCumulativeArray;

/// Resolve a bulk-load thread count: `0` means "use the machine's
/// available parallelism" (mirrors `polyfit::build::BuildOptions`, which
/// lives above this crate in the dependency order).
pub fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        t => t,
    }
}
