//! In-memory bulk-loaded B+-tree with rank and cumulative-sum queries.
//!
//! Stands in for the STX B+-tree \[2\] the paper uses as the substrate of the
//! S-tree heuristic: keys live in the leaves, internal nodes route by
//! separator keys, and every leaf entry carries the running cumulative
//! measure so a range SUM/COUNT is two descents plus a subtraction.
//!
//! The tree is static (bulk-loaded from sorted input), matching the paper's
//! no-update setting, which lets nodes be stored as flat arrays — cache
//! behaviour comparable to the original.

use crate::dataset::Record;

/// Keys per leaf node / router entries per internal node.
const NODE_CAPACITY: usize = 64;

#[derive(Clone, Debug)]
struct InternalLevel {
    /// Separator keys: `separators[i]` is the smallest key reachable via
    /// child `i + 1`.
    separators: Vec<f64>,
    /// Child index ranges are implicit: child `i` of node `j` at this level
    /// is node `j·NODE_CAPACITY + i` of the level below. We only store the
    /// per-node separator slices' offsets.
    node_offsets: Vec<usize>,
}

/// Static B+-tree over sorted records, with inclusive cumulative sums.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    keys: Vec<f64>,
    /// `cum[i]` = Σ measures of records `0..=i`.
    cum: Vec<f64>,
    levels: Vec<InternalLevel>,
    height: usize,
}

/// Minimum records per chunk before the parallel bulk-load pays off.
const PARALLEL_CHUNK_MIN: usize = 1 << 15;

impl BPlusTree {
    /// Bulk-load from records sorted by key.
    ///
    /// # Panics
    /// Panics if records are not sorted.
    pub fn new(records: &[Record]) -> Self {
        Self::with_threads(records, 1)
    }

    /// Parallel bulk-load with `threads` workers (`0` = available
    /// parallelism): leaf keys are copied and the cumulative sums computed
    /// chunk-wise (per-chunk prefix + carried offsets). Chunking
    /// reassociates the floating-point additions, so `cum` can differ from
    /// the serial [`Self::new`] by rounding when measure sums are not
    /// exactly representable; for integer-valued measures (COUNT data,
    /// integral SUM measures) the result is bit-identical.
    ///
    /// # Panics
    /// Panics if records are not sorted.
    pub fn with_threads(records: &[Record], threads: usize) -> Self {
        assert!(records.windows(2).all(|w| w[0].key <= w[1].key), "records must be sorted by key");
        let threads = crate::resolve_threads(threads);
        let n = records.len();
        let (keys, cum) = if threads > 1 && n >= PARALLEL_CHUNK_MIN {
            let chunk = n.div_ceil(threads);
            let mut keys = vec![0.0f64; n];
            let mut cum = vec![0.0f64; n];
            // Pass 1: per-chunk key copy + local prefix sums, in parallel.
            std::thread::scope(|s| {
                for ((ks, cs), rs) in
                    keys.chunks_mut(chunk).zip(cum.chunks_mut(chunk)).zip(records.chunks(chunk))
                {
                    s.spawn(move || {
                        let mut acc = 0.0;
                        for ((k, c), r) in ks.iter_mut().zip(cs.iter_mut()).zip(rs) {
                            *k = r.key;
                            acc += r.measure;
                            *c = acc;
                        }
                    });
                }
            });
            // Pass 2: fold chunk totals into offsets, add in parallel.
            let offsets: Vec<f64> = cum
                .chunks(chunk)
                .scan(0.0, |acc, c| {
                    let this = *acc;
                    *acc += c.last().copied().unwrap_or(0.0);
                    Some(this)
                })
                .collect();
            std::thread::scope(|s| {
                for (cs, &off) in cum.chunks_mut(chunk).zip(&offsets) {
                    if off != 0.0 {
                        s.spawn(move || {
                            for c in cs {
                                *c += off;
                            }
                        });
                    }
                }
            });
            (keys, cum)
        } else {
            let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
            let mut cum = Vec::with_capacity(n);
            let mut acc = 0.0;
            for r in records {
                acc += r.measure;
                cum.push(acc);
            }
            (keys, cum)
        };
        // Build router levels bottom-up: each level summarises blocks of
        // NODE_CAPACITY entries of the level below with their first key.
        let mut levels = Vec::new();
        let mut level_first_keys: Vec<f64> = keys.chunks(NODE_CAPACITY).map(|c| c[0]).collect();
        while level_first_keys.len() > 1 {
            let separators = level_first_keys.clone();
            let node_offsets = (0..separators.len()).step_by(NODE_CAPACITY).collect();
            levels.push(InternalLevel { separators, node_offsets });
            level_first_keys = level_first_keys.chunks(NODE_CAPACITY).map(|c| c[0]).collect();
        }
        levels.reverse();
        let height = levels.len() + 1;
        BPlusTree { keys, cum, levels, height }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Tree height including the leaf level.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of records with key ≤ `x`, located by root-to-leaf descent —
    /// binary search within each node, the classic B+-tree probe.
    pub fn rank_inclusive(&self, x: f64) -> usize {
        // Descend router levels to locate the leaf block.
        let mut block = 0usize;
        for level in &self.levels {
            let lo = block * NODE_CAPACITY;
            let hi = (lo + NODE_CAPACITY).min(level.separators.len());
            if lo >= level.separators.len() {
                block = lo; // degenerate: propagate position
                continue;
            }
            let within = level.separators[lo..hi].partition_point(|&k| k <= x);
            block = lo + within.saturating_sub(1).min(hi - lo - 1);
        }
        let lo = block * NODE_CAPACITY;
        if lo >= self.keys.len() {
            return self.keys.len();
        }
        let hi = (lo + NODE_CAPACITY).min(self.keys.len());
        let within = self.keys[lo..hi].partition_point(|&k| k <= x);
        if within == hi - lo && hi < self.keys.len() {
            // x may exceed this leaf; but descent guarantees x < first key
            // of next leaf, except at exact-boundary ties — resolve by a
            // final check.
            let next_first = self.keys[hi];
            if next_first <= x {
                return self.keys[hi..].partition_point(|&k| k <= x) + hi;
            }
        }
        lo + within
    }

    /// The inclusive cumulative function `CF(x)`.
    pub fn cf(&self, x: f64) -> f64 {
        match self.rank_inclusive(x) {
            0 => 0.0,
            i => self.cum[i - 1],
        }
    }

    /// Range SUM over the half-open range `(lq, uq]` (paper convention).
    pub fn range_sum(&self, lq: f64, uq: f64) -> f64 {
        if lq >= uq {
            return 0.0;
        }
        self.cf(uq) - self.cf(lq)
    }

    /// Batched range SUM over half-open ranges, bitwise identical to
    /// per-range [`Self::range_sum`] calls (the root-to-leaf descent and
    /// the shared galloping sweep compute the same inclusive rank). All
    /// `2m` endpoints share one sorted sweep of the leaf key array.
    pub fn range_sum_batch(&self, ranges: &[(f64, f64)]) -> Vec<f64> {
        crate::dataset::range_sum_batch_prefix(&self.keys, &self.cum, ranges)
    }

    /// Heap size in bytes (leaves + routers).
    pub fn size_bytes(&self) -> usize {
        let leaf = (self.keys.len() + self.cum.len()) * std::mem::size_of::<f64>();
        let routers: usize = self
            .levels
            .iter()
            .map(|l| {
                l.separators.len() * std::mem::size_of::<f64>()
                    + l.node_offsets.len() * std::mem::size_of::<usize>()
            })
            .sum();
        leaf + routers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(n: usize) -> (BPlusTree, Vec<Record>) {
        let records: Vec<Record> =
            (0..n).map(|i| Record::new(i as f64 * 2.0, (i % 5) as f64)).collect();
        (BPlusTree::new(&records), records)
    }

    #[test]
    fn rank_matches_partition_point() {
        let (t, records) = tree_of(1000);
        let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
        for &x in &[-1.0, 0.0, 1.0, 2.0, 999.0, 1000.0, 1998.0, 5000.0, 333.3] {
            assert_eq!(t.rank_inclusive(x), keys.partition_point(|&k| k <= x), "rank at {x}");
        }
    }

    #[test]
    fn rank_exhaustive_small() {
        let (t, records) = tree_of(257); // crosses leaf boundaries
        let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
        for r in &records {
            let x = r.key;
            assert_eq!(t.rank_inclusive(x), keys.partition_point(|&k| k <= x));
            let x2 = x + 1.0; // between keys
            assert_eq!(t.rank_inclusive(x2), keys.partition_point(|&k| k <= x2));
        }
    }

    #[test]
    fn range_sum_matches_brute() {
        let (t, records) = tree_of(500);
        for &(l, u) in &[(0.0, 100.0), (-10.0, 2000.0), (500.0, 500.0), (37.0, 41.0)] {
            let brute: f64 =
                records.iter().filter(|r| r.key > l && r.key <= u).map(|r| r.measure).sum();
            assert_eq!(t.range_sum(l, u), brute, "range ({l}, {u}]");
        }
    }

    #[test]
    fn parallel_bulk_load_matches_serial_on_integer_measures() {
        // Integer measures: chunked prefix sums are exactly representable,
        // so the parallel load is bit-identical to the serial one.
        let records: Vec<Record> =
            (0..(1 << 15) + 91).map(|i| Record::new(i as f64, (i % 7) as f64)).collect();
        let serial = BPlusTree::new(&records);
        for threads in [2usize, 4] {
            let par = BPlusTree::with_threads(&records, threads);
            for &x in &[-1.0, 0.0, 100.5, 16384.0, 32859.0, 1e9] {
                assert_eq!(serial.rank_inclusive(x), par.rank_inclusive(x), "threads {threads}");
                assert_eq!(serial.cf(x).to_bits(), par.cf(x).to_bits(), "threads {threads}");
            }
            assert_eq!(serial.height(), par.height());
        }
    }

    #[test]
    fn batch_range_sum_matches_single_queries() {
        let (t, _) = tree_of(500);
        let ranges = [(0.0, 100.0), (-10.0, 2000.0), (500.0, 500.0), (37.0, 41.0), (900.0, 10.0)];
        let batch = t.range_sum_batch(&ranges);
        for (i, &(l, u)) in ranges.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), t.range_sum(l, u).to_bits());
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let (t1, _) = tree_of(10);
        let (t2, _) = tree_of(10_000);
        assert_eq!(t1.height(), 1);
        assert!(t2.height() >= 2);
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new(&[]);
        assert!(t.is_empty());
        assert_eq!(t.rank_inclusive(5.0), 0);
        assert_eq!(t.range_sum(0.0, 10.0), 0.0);
    }

    #[test]
    fn single_record() {
        let t = BPlusTree::new(&[Record::new(7.0, 3.0)]);
        assert_eq!(t.cf(6.9), 0.0);
        assert_eq!(t.cf(7.0), 3.0);
        assert_eq!(t.range_sum(0.0, 7.0), 3.0);
    }

    #[test]
    fn duplicate_keys() {
        let records = vec![Record::new(1.0, 1.0), Record::new(1.0, 1.0), Record::new(2.0, 1.0)];
        let t = BPlusTree::new(&records);
        assert_eq!(t.cf(1.0), 2.0);
        assert_eq!(t.range_sum(0.0, 2.0), 3.0);
    }
}
