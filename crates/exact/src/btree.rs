//! In-memory bulk-loaded B+-tree with rank and cumulative-sum queries.
//!
//! Stands in for the STX B+-tree \[2\] the paper uses as the substrate of the
//! S-tree heuristic: keys live in the leaves, internal nodes route by
//! separator keys, and every leaf entry carries the running cumulative
//! measure so a range SUM/COUNT is two descents plus a subtraction.
//!
//! The tree is static (bulk-loaded from sorted input), matching the paper's
//! no-update setting, which lets nodes be stored as flat arrays — cache
//! behaviour comparable to the original.

use crate::dataset::Record;

/// Keys per leaf node / router entries per internal node.
const NODE_CAPACITY: usize = 64;

#[derive(Clone, Debug)]
struct InternalLevel {
    /// Separator keys: `separators[i]` is the smallest key reachable via
    /// child `i + 1`.
    separators: Vec<f64>,
    /// Child index ranges are implicit: child `i` of node `j` at this level
    /// is node `j·NODE_CAPACITY + i` of the level below. We only store the
    /// per-node separator slices' offsets.
    node_offsets: Vec<usize>,
}

/// Static B+-tree over sorted records, with inclusive cumulative sums.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    keys: Vec<f64>,
    /// `cum[i]` = Σ measures of records `0..=i`.
    cum: Vec<f64>,
    levels: Vec<InternalLevel>,
    height: usize,
}

impl BPlusTree {
    /// Bulk-load from records sorted by key.
    ///
    /// # Panics
    /// Panics if records are not sorted.
    pub fn new(records: &[Record]) -> Self {
        assert!(records.windows(2).all(|w| w[0].key <= w[1].key), "records must be sorted by key");
        let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
        let mut cum = Vec::with_capacity(records.len());
        let mut acc = 0.0;
        for r in records {
            acc += r.measure;
            cum.push(acc);
        }
        // Build router levels bottom-up: each level summarises blocks of
        // NODE_CAPACITY entries of the level below with their first key.
        let mut levels = Vec::new();
        let mut level_first_keys: Vec<f64> = keys.chunks(NODE_CAPACITY).map(|c| c[0]).collect();
        while level_first_keys.len() > 1 {
            let separators = level_first_keys.clone();
            let node_offsets = (0..separators.len()).step_by(NODE_CAPACITY).collect();
            levels.push(InternalLevel { separators, node_offsets });
            level_first_keys = level_first_keys.chunks(NODE_CAPACITY).map(|c| c[0]).collect();
        }
        levels.reverse();
        let height = levels.len() + 1;
        BPlusTree { keys, cum, levels, height }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Tree height including the leaf level.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of records with key ≤ `x`, located by root-to-leaf descent —
    /// binary search within each node, the classic B+-tree probe.
    pub fn rank_inclusive(&self, x: f64) -> usize {
        // Descend router levels to locate the leaf block.
        let mut block = 0usize;
        for level in &self.levels {
            let lo = block * NODE_CAPACITY;
            let hi = (lo + NODE_CAPACITY).min(level.separators.len());
            if lo >= level.separators.len() {
                block = lo; // degenerate: propagate position
                continue;
            }
            let within = level.separators[lo..hi].partition_point(|&k| k <= x);
            block = lo + within.saturating_sub(1).min(hi - lo - 1);
        }
        let lo = block * NODE_CAPACITY;
        if lo >= self.keys.len() {
            return self.keys.len();
        }
        let hi = (lo + NODE_CAPACITY).min(self.keys.len());
        let within = self.keys[lo..hi].partition_point(|&k| k <= x);
        if within == hi - lo && hi < self.keys.len() {
            // x may exceed this leaf; but descent guarantees x < first key
            // of next leaf, except at exact-boundary ties — resolve by a
            // final check.
            let next_first = self.keys[hi];
            if next_first <= x {
                return self.keys[hi..].partition_point(|&k| k <= x) + hi;
            }
        }
        lo + within
    }

    /// The inclusive cumulative function `CF(x)`.
    pub fn cf(&self, x: f64) -> f64 {
        match self.rank_inclusive(x) {
            0 => 0.0,
            i => self.cum[i - 1],
        }
    }

    /// Range SUM over the half-open range `(lq, uq]` (paper convention).
    pub fn range_sum(&self, lq: f64, uq: f64) -> f64 {
        if lq >= uq {
            return 0.0;
        }
        self.cf(uq) - self.cf(lq)
    }

    /// Heap size in bytes (leaves + routers).
    pub fn size_bytes(&self) -> usize {
        let leaf = (self.keys.len() + self.cum.len()) * std::mem::size_of::<f64>();
        let routers: usize = self
            .levels
            .iter()
            .map(|l| {
                l.separators.len() * std::mem::size_of::<f64>()
                    + l.node_offsets.len() * std::mem::size_of::<usize>()
            })
            .sum();
        leaf + routers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(n: usize) -> (BPlusTree, Vec<Record>) {
        let records: Vec<Record> =
            (0..n).map(|i| Record::new(i as f64 * 2.0, (i % 5) as f64)).collect();
        (BPlusTree::new(&records), records)
    }

    #[test]
    fn rank_matches_partition_point() {
        let (t, records) = tree_of(1000);
        let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
        for &x in &[-1.0, 0.0, 1.0, 2.0, 999.0, 1000.0, 1998.0, 5000.0, 333.3] {
            assert_eq!(t.rank_inclusive(x), keys.partition_point(|&k| k <= x), "rank at {x}");
        }
    }

    #[test]
    fn rank_exhaustive_small() {
        let (t, records) = tree_of(257); // crosses leaf boundaries
        let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
        for r in &records {
            let x = r.key;
            assert_eq!(t.rank_inclusive(x), keys.partition_point(|&k| k <= x));
            let x2 = x + 1.0; // between keys
            assert_eq!(t.rank_inclusive(x2), keys.partition_point(|&k| k <= x2));
        }
    }

    #[test]
    fn range_sum_matches_brute() {
        let (t, records) = tree_of(500);
        for &(l, u) in &[(0.0, 100.0), (-10.0, 2000.0), (500.0, 500.0), (37.0, 41.0)] {
            let brute: f64 =
                records.iter().filter(|r| r.key > l && r.key <= u).map(|r| r.measure).sum();
            assert_eq!(t.range_sum(l, u), brute, "range ({l}, {u}]");
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let (t1, _) = tree_of(10);
        let (t2, _) = tree_of(10_000);
        assert_eq!(t1.height(), 1);
        assert!(t2.height() >= 2);
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new(&[]);
        assert!(t.is_empty());
        assert_eq!(t.rank_inclusive(5.0), 0);
        assert_eq!(t.range_sum(0.0, 10.0), 0.0);
    }

    #[test]
    fn single_record() {
        let t = BPlusTree::new(&[Record::new(7.0, 3.0)]);
        assert_eq!(t.cf(6.9), 0.0);
        assert_eq!(t.cf(7.0), 3.0);
        assert_eq!(t.range_sum(0.0, 7.0), 3.0);
    }

    #[test]
    fn duplicate_keys() {
        let records = vec![Record::new(1.0, 1.0), Record::new(1.0, 1.0), Record::new(2.0, 1.0)];
        let t = BPlusTree::new(&records);
        assert_eq!(t.cf(1.0), 2.0);
        assert_eq!(t.range_sum(0.0, 2.0), 3.0);
    }
}
