//! Aggregate segment tree (paper Section III-B2, Fig. 4).
//!
//! An implicit (array-embedded) segment tree over the sorted records, with
//! each node storing the max, min, and sum of its subtree. Range queries
//! map the key range to an index range by binary search, then descend the
//! tree touching at most two branches per level — the paper's aggregate
//! max-tree traversal, `O(log n)`.

use crate::dataset::{batch_ranks, rank_exclusive, rank_inclusive, Record};
use crate::resolve_threads;

#[derive(Clone, Copy, Debug)]
struct NodeAgg {
    max: f64,
    min: f64,
    sum: f64,
}

const EMPTY_AGG: NodeAgg = NodeAgg { max: f64::NEG_INFINITY, min: f64::INFINITY, sum: 0.0 };

fn merge(a: NodeAgg, b: NodeAgg) -> NodeAgg {
    NodeAgg { max: a.max.max(b.max), min: a.min.min(b.min), sum: a.sum + b.sum }
}

/// Segment tree with per-node MAX/MIN/SUM aggregates over sorted records.
#[derive(Clone, Debug)]
pub struct AggTree {
    keys: Vec<f64>,
    /// 1-indexed implicit binary tree of size `2·size`; leaves at
    /// `size..size+n`.
    nodes: Vec<NodeAgg>,
    size: usize,
    n: usize,
}

/// Below this many nodes, a level is merged serially — thread spawns cost
/// more than the merges they would split.
const PARALLEL_LEVEL_MIN: usize = 1 << 13;

impl AggTree {
    /// Build from records sorted by key.
    ///
    /// # Panics
    /// Panics if records are not sorted.
    pub fn new(records: &[Record]) -> Self {
        Self::with_threads(records, 1)
    }

    /// Parallel bulk-load: leaves are filled and each sufficiently large
    /// tree level is merged by `threads` workers (`0` = available
    /// parallelism). Per-node merges are identical regardless of execution
    /// order, so the tree is **bit-identical** to [`Self::new`] for every
    /// thread count.
    ///
    /// # Panics
    /// Panics if records are not sorted.
    pub fn with_threads(records: &[Record], threads: usize) -> Self {
        assert!(records.windows(2).all(|w| w[0].key <= w[1].key), "records must be sorted by key");
        let threads = resolve_threads(threads);
        let n = records.len();
        let size = n.next_power_of_two().max(1);
        let mut nodes = vec![EMPTY_AGG; 2 * size];
        let fill = |leaves: &mut [NodeAgg], rs: &[Record]| {
            for (slot, r) in leaves.iter_mut().zip(rs) {
                *slot = NodeAgg { max: r.measure, min: r.measure, sum: r.measure };
            }
        };
        if threads > 1 && n >= PARALLEL_LEVEL_MIN {
            let leaves = &mut nodes[size..size + n];
            let chunk = n.div_ceil(threads);
            std::thread::scope(|s| {
                for (ls, rs) in leaves.chunks_mut(chunk).zip(records.chunks(chunk)) {
                    s.spawn(move || fill(ls, rs));
                }
            });
        } else {
            fill(&mut nodes[size..size + n], records);
        }
        // Bottom-up by level: level `L` occupies indices [L, 2L) and reads
        // only its child level [2L, 4L), so levels split into disjoint
        // mutable/shared slices.
        let mut level = size / 2;
        while level >= 1 {
            let (head, children) = nodes.split_at_mut(2 * level);
            let current = &mut head[level..];
            if threads > 1 && level >= PARALLEL_LEVEL_MIN {
                let chunk = level.div_ceil(threads);
                std::thread::scope(|s| {
                    for (ci, slots) in current.chunks_mut(chunk).enumerate() {
                        let children = &*children;
                        s.spawn(move || {
                            let base = ci * chunk;
                            for (k, slot) in slots.iter_mut().enumerate() {
                                let j = base + k;
                                *slot = merge(children[2 * j], children[2 * j + 1]);
                            }
                        });
                    }
                });
            } else {
                for (j, slot) in current.iter_mut().enumerate() {
                    *slot = merge(children[2 * j], children[2 * j + 1]);
                }
            }
            level /= 2;
        }
        AggTree { keys: records.iter().map(|r| r.key).collect(), nodes, size, n }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn query_idx(&self, lo: usize, hi: usize) -> NodeAgg {
        // Aggregate over leaf index range [lo, hi) — standard iterative
        // bottom-up segment tree walk.
        if lo >= hi {
            return EMPTY_AGG;
        }
        let mut l = lo + self.size;
        let mut r = hi + self.size;
        let mut acc_l = EMPTY_AGG;
        let mut acc_r = EMPTY_AGG;
        while l < r {
            if l & 1 == 1 {
                acc_l = merge(acc_l, self.nodes[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                acc_r = merge(self.nodes[r], acc_r);
            }
            l >>= 1;
            r >>= 1;
        }
        merge(acc_l, acc_r)
    }

    /// Leaf index range covering records with key in the *closed* range
    /// `[lq, uq]`.
    fn idx_range_closed(&self, lq: f64, uq: f64) -> (usize, usize) {
        (rank_exclusive(&self.keys, lq), rank_inclusive(&self.keys, uq))
    }

    /// Maximum of the step function `DF_max` over `[lq, uq]`: the maximum
    /// measure among records with key in `[pred(lq), uq]`, where `pred(lq)`
    /// is the largest key `≤ lq` (see crate-level semantics notes). Returns
    /// `None` when the range covers no step of the function.
    pub fn range_max(&self, lq: f64, uq: f64) -> Option<f64> {
        if lq > uq || self.n == 0 {
            return None;
        }
        let lo = rank_inclusive(&self.keys, lq).saturating_sub(1);
        let hi = rank_inclusive(&self.keys, uq);
        // When lq precedes every key, DF_max is 0/undefined left of the
        // first key; fall back to records inside the range only.
        let lo =
            if rank_inclusive(&self.keys, lq) == 0 { rank_exclusive(&self.keys, lq) } else { lo };
        let agg = self.query_idx(lo, hi);
        (agg.max > f64::NEG_INFINITY).then_some(agg.max)
    }

    /// Minimum of `DF_min` over `[lq, uq]` (mirror of [`Self::range_max`]).
    pub fn range_min(&self, lq: f64, uq: f64) -> Option<f64> {
        if lq > uq || self.n == 0 {
            return None;
        }
        let lo = if rank_inclusive(&self.keys, lq) == 0 {
            rank_exclusive(&self.keys, lq)
        } else {
            rank_inclusive(&self.keys, lq) - 1
        };
        let hi = rank_inclusive(&self.keys, uq);
        let agg = self.query_idx(lo, hi);
        (agg.min < f64::INFINITY).then_some(agg.min)
    }

    /// Batched [`Self::range_max`]: all boundary ranks are computed with
    /// shared sorted sweeps of the key array, then each range runs the
    /// same tree walk — results bitwise identical to per-range calls.
    pub fn range_max_batch(&self, ranges: &[(f64, f64)]) -> Vec<Option<f64>> {
        self.range_extremum_batch(ranges, true)
    }

    /// Batched [`Self::range_min`] (see [`Self::range_max_batch`]).
    pub fn range_min_batch(&self, ranges: &[(f64, f64)]) -> Vec<Option<f64>> {
        self.range_extremum_batch(ranges, false)
    }

    fn range_extremum_batch(&self, ranges: &[(f64, f64)], want_max: bool) -> Vec<Option<f64>> {
        let lqs: Vec<f64> = ranges.iter().map(|&(lq, _)| lq).collect();
        let uqs: Vec<f64> = ranges.iter().map(|&(_, uq)| uq).collect();
        let incl_l = batch_ranks(&self.keys, &lqs, true);
        let incl_u = batch_ranks(&self.keys, &uqs, true);
        ranges
            .iter()
            .enumerate()
            .map(|(q, &(lq, uq))| {
                if lq > uq || self.n == 0 {
                    return None;
                }
                // Same predecessor-step logic as the single-query path:
                // when the inclusive rank is 0 the exclusive rank is 0 as
                // well (rank_exclusive ≤ rank_inclusive), so saturating
                // subtraction covers both branches.
                let lo = incl_l[q].saturating_sub(1);
                let agg = self.query_idx(lo, incl_u[q]);
                if want_max {
                    (agg.max > f64::NEG_INFINITY).then_some(agg.max)
                } else {
                    (agg.min < f64::INFINITY).then_some(agg.min)
                }
            })
            .collect()
    }

    /// Maximum measure among records with key strictly inside the closed
    /// range `[lq, uq]` (record semantics — no predecessor step).
    pub fn range_max_records(&self, lq: f64, uq: f64) -> Option<f64> {
        if lq > uq {
            return None;
        }
        let (lo, hi) = self.idx_range_closed(lq, uq);
        let agg = self.query_idx(lo, hi);
        (agg.max > f64::NEG_INFINITY).then_some(agg.max)
    }

    /// Minimum measure among records in the closed range.
    pub fn range_min_records(&self, lq: f64, uq: f64) -> Option<f64> {
        if lq > uq {
            return None;
        }
        let (lo, hi) = self.idx_range_closed(lq, uq);
        let agg = self.query_idx(lo, hi);
        (agg.min < f64::INFINITY).then_some(agg.min)
    }

    /// Sum of measures among records in the closed range.
    pub fn range_sum_records(&self, lq: f64, uq: f64) -> f64 {
        if lq > uq {
            return 0.0;
        }
        let (lo, hi) = self.idx_range_closed(lq, uq);
        self.query_idx(lo, hi).sum
    }

    /// Heap size in bytes (keys + node aggregates).
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<f64>()
            + self.nodes.len() * std::mem::size_of::<NodeAgg>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<Record> {
        vec![
            Record::new(1.0, 5.0),
            Record::new(2.0, 9.0),
            Record::new(4.0, 2.0),
            Record::new(7.0, 7.0),
            Record::new(9.0, 1.0),
        ]
    }

    #[test]
    fn record_semantics_max() {
        let t = AggTree::new(&records());
        assert_eq!(t.range_max_records(1.0, 9.0), Some(9.0));
        assert_eq!(t.range_max_records(3.0, 8.0), Some(7.0));
        assert_eq!(t.range_max_records(4.5, 6.0), None);
        assert_eq!(t.range_max_records(9.0, 9.0), Some(1.0));
    }

    #[test]
    fn function_semantics_max_includes_predecessor_step() {
        let t = AggTree::new(&records());
        // [4.5, 6]: DF_max equals 2.0 (the step starting at key 4).
        assert_eq!(t.range_max(4.5, 6.0), Some(2.0));
        // [2, 3]: steps from key 2 only (2 is an existing key).
        assert_eq!(t.range_max(2.0, 3.0), Some(9.0));
        // [2.5, 3]: step from key 2 extends over the whole range.
        assert_eq!(t.range_max(2.5, 3.0), Some(9.0));
        // Left of all keys: no steps until key 1 enters at lq ≤ 1 ≤ uq.
        assert_eq!(t.range_max(0.0, 0.5), None);
        assert_eq!(t.range_max(0.0, 1.0), Some(5.0));
    }

    #[test]
    fn min_variants() {
        let t = AggTree::new(&records());
        assert_eq!(t.range_min_records(1.0, 9.0), Some(1.0));
        assert_eq!(t.range_min_records(2.0, 7.0), Some(2.0));
        assert_eq!(t.range_min(4.5, 6.0), Some(2.0));
    }

    #[test]
    fn sum_matches_brute_force() {
        let rs = records();
        let t = AggTree::new(&rs);
        for &(l, u) in &[(0.0, 10.0), (2.0, 7.0), (3.0, 3.5), (9.0, 9.0)] {
            let brute: f64 =
                rs.iter().filter(|r| r.key >= l && r.key <= u).map(|r| r.measure).sum();
            assert_eq!(t.range_sum_records(l, u), brute, "range [{l}, {u}]");
        }
    }

    #[test]
    fn empty_tree() {
        let t = AggTree::new(&[]);
        assert!(t.is_empty());
        assert_eq!(t.range_max(0.0, 1.0), None);
        assert_eq!(t.range_sum_records(0.0, 1.0), 0.0);
    }

    #[test]
    fn inverted_range() {
        let t = AggTree::new(&records());
        assert_eq!(t.range_max(5.0, 1.0), None);
        assert_eq!(t.range_max_records(5.0, 1.0), None);
    }

    #[test]
    fn single_record() {
        let t = AggTree::new(&[Record::new(3.0, 42.0)]);
        assert_eq!(t.range_max_records(3.0, 3.0), Some(42.0));
        assert_eq!(t.range_max(10.0, 20.0), Some(42.0)); // step extends right
        assert_eq!(t.range_max(0.0, 1.0), None);
    }

    #[test]
    fn parallel_bulk_load_is_bit_identical() {
        // Enough records to cross PARALLEL_LEVEL_MIN so the parallel path
        // actually runs.
        let rs: Vec<Record> = (0..(1 << 14) + 37)
            .map(|i| Record::new(i as f64, ((i * 2654435761_usize) % 997) as f64 * 0.25))
            .collect();
        let serial = AggTree::new(&rs);
        for threads in [2usize, 4] {
            let par = AggTree::with_threads(&rs, threads);
            for &(l, u) in &[(0.0, 20000.0), (100.0, 5000.0), (8191.5, 8192.5), (3.0, 3.0)] {
                assert_eq!(
                    serial.range_max(l, u).map(f64::to_bits),
                    par.range_max(l, u).map(f64::to_bits),
                    "threads {threads} range [{l}, {u}]"
                );
                assert_eq!(
                    serial.range_sum_records(l, u).to_bits(),
                    par.range_sum_records(l, u).to_bits()
                );
            }
        }
    }

    #[test]
    fn batch_extrema_match_single_queries() {
        let t = AggTree::new(&records());
        let ranges = [
            (1.0, 9.0),
            (4.5, 6.0),
            (0.0, 0.5),
            (5.0, 1.0),
            (2.0, 3.0),
            (9.0, 9.0),
            (-10.0, 100.0),
        ];
        let maxs = t.range_max_batch(&ranges);
        let mins = t.range_min_batch(&ranges);
        for (i, &(l, u)) in ranges.iter().enumerate() {
            assert_eq!(maxs[i].map(f64::to_bits), t.range_max(l, u).map(f64::to_bits));
            assert_eq!(mins[i].map(f64::to_bits), t.range_min(l, u).map(f64::to_bits));
        }
    }

    #[test]
    fn large_randomish_brute_force() {
        let rs: Vec<Record> = (0..512)
            .map(|i| Record::new(i as f64, ((i * 2654435761_usize) % 1000) as f64))
            .collect();
        let t = AggTree::new(&rs);
        for step in [1usize, 7, 63, 200] {
            for start in (0..512 - step).step_by(37) {
                let (l, u) = (start as f64, (start + step) as f64);
                let brute = rs
                    .iter()
                    .filter(|r| r.key >= l && r.key <= u)
                    .map(|r| r.measure)
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(t.range_max_records(l, u), Some(brute));
            }
        }
    }
}
