//! Aggregate R-tree over 2-D points (the aR-tree comparator \[46\]).
//!
//! Bulk-loaded with the Sort-Tile-Recursive (STR) packing: points are
//! sorted by `u`, sliced into vertical strips, and each strip sorted by `v`
//! and cut into tiles of `FANOUT` points. Internal nodes store the minimum
//! bounding rectangle plus COUNT / SUM / MAX aggregates of their subtree,
//! so a range query adds fully-covered subtrees in `O(1)` per node and only
//! descends partially-overlapping ones — the traversal of paper Fig. 4
//! generalised to two keys.

use crate::dataset::Point2d;

/// Node fanout (entries per internal node, points per leaf).
const FANOUT: usize = 64;

/// Axis-aligned bounding rectangle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Minimum `u` coordinate.
    pub u_lo: f64,
    /// Maximum `u` coordinate.
    pub u_hi: f64,
    /// Minimum `v` coordinate.
    pub v_lo: f64,
    /// Maximum `v` coordinate.
    pub v_hi: f64,
}

impl Rect {
    /// An empty (inverted) rectangle that unions as the identity.
    pub fn empty() -> Self {
        Rect {
            u_lo: f64::INFINITY,
            u_hi: f64::NEG_INFINITY,
            v_lo: f64::INFINITY,
            v_hi: f64::NEG_INFINITY,
        }
    }

    /// Construct from bounds.
    pub fn new(u_lo: f64, u_hi: f64, v_lo: f64, v_hi: f64) -> Self {
        Rect { u_lo, u_hi, v_lo, v_hi }
    }

    fn extend_point(&mut self, p: &Point2d) {
        self.u_lo = self.u_lo.min(p.u);
        self.u_hi = self.u_hi.max(p.u);
        self.v_lo = self.v_lo.min(p.v);
        self.v_hi = self.v_hi.max(p.v);
    }

    fn extend_rect(&mut self, r: &Rect) {
        self.u_lo = self.u_lo.min(r.u_lo);
        self.u_hi = self.u_hi.max(r.u_hi);
        self.v_lo = self.v_lo.min(r.v_lo);
        self.v_hi = self.v_hi.max(r.v_hi);
    }

    /// True if `self` is fully inside `query`.
    fn inside(&self, query: &Rect) -> bool {
        self.u_lo >= query.u_lo
            && self.u_hi <= query.u_hi
            && self.v_lo >= query.v_lo
            && self.v_hi <= query.v_hi
    }

    /// True if `self` intersects `query`.
    fn intersects(&self, query: &Rect) -> bool {
        self.u_lo <= query.u_hi
            && self.u_hi >= query.u_lo
            && self.v_lo <= query.v_hi
            && self.v_hi >= query.v_lo
    }

    /// True if the point lies inside (closed) this rectangle.
    fn contains(&self, p: &Point2d) -> bool {
        p.u >= self.u_lo && p.u <= self.u_hi && p.v >= self.v_lo && p.v <= self.v_hi
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf { mbr: Rect, count: u64, sum: f64, max: f64, points: Vec<Point2d> },
    Internal { mbr: Rect, count: u64, sum: f64, max: f64, children: Vec<Node> },
}

impl Node {
    fn mbr(&self) -> &Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => mbr,
        }
    }

    fn count(&self) -> u64 {
        match self {
            Node::Leaf { count, .. } | Node::Internal { count, .. } => *count,
        }
    }

    fn sum(&self) -> f64 {
        match self {
            Node::Leaf { sum, .. } | Node::Internal { sum, .. } => *sum,
        }
    }

    fn max(&self) -> f64 {
        match self {
            Node::Leaf { max, .. } | Node::Internal { max, .. } => *max,
        }
    }
}

/// Aggregate R-tree answering exact 2-D range COUNT / SUM / MAX.
#[derive(Clone, Debug)]
pub struct ARTree {
    root: Option<Node>,
    n: usize,
    node_count: usize,
}

impl ARTree {
    /// Bulk-load from points using STR packing. Input order is irrelevant.
    pub fn new(mut points: Vec<Point2d>) -> Self {
        let n = points.len();
        if n == 0 {
            return ARTree { root: None, n: 0, node_count: 0 };
        }
        let mut node_count = 0usize;
        let leaves = str_pack(&mut points, &mut node_count);
        let root = build_up(leaves, &mut node_count);
        ARTree { root: Some(root), n, node_count }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact COUNT of points inside the closed query rectangle.
    pub fn range_count(&self, query: &Rect) -> u64 {
        let mut acc = Aggregates::default();
        if let Some(root) = &self.root {
            visit(root, query, &mut acc);
        }
        acc.count
    }

    /// Exact SUM of measures inside the closed query rectangle.
    pub fn range_sum(&self, query: &Rect) -> f64 {
        let mut acc = Aggregates::default();
        if let Some(root) = &self.root {
            visit(root, query, &mut acc);
        }
        acc.sum
    }

    /// Exact MAX measure inside the closed query rectangle (None if empty).
    pub fn range_max(&self, query: &Rect) -> Option<f64> {
        let mut acc = Aggregates::default();
        if let Some(root) = &self.root {
            visit(root, query, &mut acc);
        }
        (acc.count > 0).then_some(acc.max)
    }

    /// Total number of tree nodes (for size accounting).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        // Rect + aggregates per node, plus stored points in leaves.
        self.node_count * (std::mem::size_of::<Rect>() + 8 + 8 + 8 + 24)
            + self.n * std::mem::size_of::<Point2d>()
    }
}

#[derive(Default)]
struct Aggregates {
    count: u64,
    sum: f64,
    max: f64,
}

impl Aggregates {
    fn absorb_node(&mut self, node: &Node) {
        self.merge(node.count(), node.sum(), node.max());
    }

    fn merge(&mut self, count: u64, sum: f64, max: f64) {
        if count > 0 {
            self.max = if self.count > 0 { self.max.max(max) } else { max };
            self.count += count;
            self.sum += sum;
        }
    }
}

fn visit(node: &Node, query: &Rect, acc: &mut Aggregates) {
    if !node.mbr().intersects(query) {
        return;
    }
    if node.mbr().inside(query) {
        acc.absorb_node(node);
        return;
    }
    match node {
        Node::Leaf { points, .. } => {
            for p in points {
                if query.contains(p) {
                    acc.merge(1, p.w, p.w);
                }
            }
        }
        Node::Internal { children, .. } => {
            for c in children {
                visit(c, query, acc);
            }
        }
    }
}

fn leaf_from(points: Vec<Point2d>) -> Node {
    let mut mbr = Rect::empty();
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    for p in &points {
        mbr.extend_point(p);
        sum += p.w;
        max = max.max(p.w);
    }
    Node::Leaf { mbr, count: points.len() as u64, sum, max, points }
}

/// STR packing: slice by `u`, then tile each slice by `v`.
fn str_pack(points: &mut [Point2d], node_count: &mut usize) -> Vec<Node> {
    let n = points.len();
    let nleaves = n.div_ceil(FANOUT);
    let nslices = (nleaves as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(nslices.max(1));
    points.sort_by(|a, b| a.u.partial_cmp(&b.u).expect("finite coords"));
    let mut leaves = Vec::with_capacity(nleaves);
    for slice in points.chunks_mut(slice_size.max(1)) {
        slice.sort_by(|a, b| a.v.partial_cmp(&b.v).expect("finite coords"));
        for tile in slice.chunks(FANOUT) {
            leaves.push(leaf_from(tile.to_vec()));
            *node_count += 1;
        }
    }
    leaves
}

fn build_up(mut level: Vec<Node>, node_count: &mut usize) -> Node {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let children: Vec<Node> = iter.by_ref().take(FANOUT).collect();
            let mut mbr = Rect::empty();
            let mut count = 0u64;
            let mut sum = 0.0;
            let mut max = f64::NEG_INFINITY;
            for c in &children {
                mbr.extend_rect(c.mbr());
                count += c.count();
                sum += c.sum();
                max = max.max(c.max());
            }
            *node_count += 1;
            next.push(Node::Internal { mbr, count, sum, max, children });
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Point2d> {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push(Point2d::new(i as f64, j as f64, (i + j) as f64));
            }
        }
        pts
    }

    #[test]
    fn count_on_grid() {
        let t = ARTree::new(grid_points(20)); // 400 points
        assert_eq!(t.range_count(&Rect::new(0.0, 19.0, 0.0, 19.0)), 400);
        assert_eq!(t.range_count(&Rect::new(0.0, 4.0, 0.0, 4.0)), 25);
        assert_eq!(t.range_count(&Rect::new(5.5, 5.6, 0.0, 19.0)), 0);
        assert_eq!(t.range_count(&Rect::new(5.0, 5.0, 5.0, 5.0)), 1);
    }

    #[test]
    fn sum_and_max_on_grid() {
        let t = ARTree::new(grid_points(10));
        let q = Rect::new(0.0, 1.0, 0.0, 1.0);
        // points (0,0),(0,1),(1,0),(1,1) with w = 0,1,1,2
        assert_eq!(t.range_sum(&q), 4.0);
        assert_eq!(t.range_max(&q), Some(2.0));
        assert_eq!(t.range_max(&Rect::new(100.0, 200.0, 0.0, 1.0)), None);
    }

    #[test]
    fn brute_force_agreement_random() {
        // Deterministic pseudo-random points via a multiplicative hash.
        let pts: Vec<Point2d> = (0..5000u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 32) as f64 / u32::MAX as f64 * 100.0;
                let v = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * 100.0;
                Point2d::new(u, v, (i % 97) as f64)
            })
            .collect();
        let t = ARTree::new(pts.clone());
        for &(ul, uh, vl, vh) in &[
            (0.0, 100.0, 0.0, 100.0),
            (10.0, 30.0, 40.0, 90.0),
            (50.0, 50.1, 0.0, 100.0),
            (99.0, 100.0, 99.0, 100.0),
        ] {
            let q = Rect::new(ul, uh, vl, vh);
            let brute: Vec<&Point2d> =
                pts.iter().filter(|p| p.u >= ul && p.u <= uh && p.v >= vl && p.v <= vh).collect();
            assert_eq!(t.range_count(&q), brute.len() as u64, "count {q:?}");
            let bsum: f64 = brute.iter().map(|p| p.w).sum();
            assert!((t.range_sum(&q) - bsum).abs() < 1e-6, "sum {q:?}");
            let bmax = brute.iter().map(|p| p.w).fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(t.range_max(&q), (!brute.is_empty()).then_some(bmax), "max {q:?}");
        }
    }

    #[test]
    fn empty_tree() {
        let t = ARTree::new(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.range_count(&Rect::new(0.0, 1.0, 0.0, 1.0)), 0);
        assert_eq!(t.range_max(&Rect::new(0.0, 1.0, 0.0, 1.0)), None);
    }

    #[test]
    fn single_point() {
        let t = ARTree::new(vec![Point2d::new(3.0, 4.0, 5.0)]);
        assert_eq!(t.range_count(&Rect::new(3.0, 3.0, 4.0, 4.0)), 1);
        assert_eq!(t.range_count(&Rect::new(3.1, 5.0, 0.0, 10.0)), 0);
    }

    #[test]
    fn node_count_grows_with_data() {
        let small = ARTree::new(grid_points(5));
        let large = ARTree::new(grid_points(40));
        assert!(large.node_count() > small.node_count());
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn negative_coordinates() {
        let pts = vec![
            Point2d::new(-10.0, -10.0, 1.0),
            Point2d::new(-5.0, -5.0, 2.0),
            Point2d::new(0.0, 0.0, 3.0),
        ];
        let t = ARTree::new(pts);
        assert_eq!(t.range_count(&Rect::new(-11.0, -4.0, -11.0, -4.0)), 2);
    }
}
