//! Property-based tests for the exact substrates: every structure must
//! agree with brute force on arbitrary inputs and ranges.

use proptest::prelude::*;

use polyfit_exact::artree::Rect;
use polyfit_exact::dataset::{dedup_sum, sort_records, Point2d, Record};
use polyfit_exact::{ARTree, AggTree, BPlusTree, KeyCumulativeArray};

fn records(max_len: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec((-500.0f64..500.0, 0.0f64..20.0), 1..max_len)
        .prop_map(|ps| ps.into_iter().map(|(k, m)| Record::new(k, m)).collect())
}

fn points(max_len: usize) -> impl Strategy<Value = Vec<Point2d>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0, 0.0f64..5.0), 1..max_len)
        .prop_map(|ps| ps.into_iter().map(|(u, v, w)| Point2d::new(u, v, w)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kca_and_btree_agree_with_brute(mut rs in records(60), l in -600.0f64..600.0, span in 0.0f64..1200.0) {
        sort_records(&mut rs);
        let rs = dedup_sum(rs);
        let kca = KeyCumulativeArray::new(&rs);
        let bt = BPlusTree::new(&rs);
        let u = l + span;
        let brute: f64 = rs.iter().filter(|r| r.key > l && r.key <= u).map(|r| r.measure).sum();
        prop_assert!((kca.range_sum(l, u) - brute).abs() <= 1e-7);
        prop_assert!((bt.range_sum(l, u) - brute).abs() <= 1e-7);
        // Inclusive CF agreement at an arbitrary probe.
        prop_assert_eq!(kca.cf(l), bt.cf(l));
    }

    #[test]
    fn kca_closed_vs_halfopen(mut rs in records(40), l in -600.0f64..600.0, span in 0.0f64..1200.0) {
        sort_records(&mut rs);
        let rs = dedup_sum(rs);
        let kca = KeyCumulativeArray::new(&rs);
        let u = l + span;
        let closed: f64 = rs.iter().filter(|r| r.key >= l && r.key <= u).map(|r| r.measure).sum();
        prop_assert!((kca.range_sum_closed(l, u) - closed).abs() <= 1e-7);
        // Half-open ≤ closed always (non-negative measures).
        prop_assert!(kca.range_sum(l, u) <= kca.range_sum_closed(l, u) + 1e-9);
    }

    #[test]
    fn aggtree_extremes_match_brute(mut rs in records(60), l in -600.0f64..600.0, span in 0.0f64..1200.0) {
        sort_records(&mut rs);
        let tree = AggTree::new(&rs);
        let u = l + span;
        let in_range: Vec<f64> = rs.iter()
            .filter(|r| r.key >= l && r.key <= u)
            .map(|r| r.measure)
            .collect();
        let bmax = in_range.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let bmin = in_range.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(tree.range_max_records(l, u), (!in_range.is_empty()).then_some(bmax));
        prop_assert_eq!(tree.range_min_records(l, u), (!in_range.is_empty()).then_some(bmin));
        let bsum: f64 = in_range.iter().sum();
        prop_assert!((tree.range_sum_records(l, u) - bsum).abs() <= 1e-7);
    }

    #[test]
    fn aggtree_function_semantics_includes_pred(mut rs in records(40), probe in -600.0f64..600.0) {
        sort_records(&mut rs);
        let rs = polyfit_exact::dataset::dedup_max(rs);
        let tree = AggTree::new(&rs);
        // Point query [probe, probe] under function semantics = measure of
        // the largest key ≤ probe (the step covering probe).
        let pred = rs.iter().rev().find(|r| r.key <= probe).map(|r| r.measure);
        prop_assert_eq!(tree.range_max(probe, probe), pred);
    }

    #[test]
    fn artree_matches_brute(pts in points(80), ul in -120.0f64..120.0, us in 0.0f64..240.0, vl in -120.0f64..120.0, vs in 0.0f64..240.0) {
        let tree = ARTree::new(pts.clone());
        let rect = Rect::new(ul, ul + us, vl, vl + vs);
        let inside: Vec<&Point2d> = pts.iter()
            .filter(|p| p.u >= ul && p.u <= ul + us && p.v >= vl && p.v <= vl + vs)
            .collect();
        prop_assert_eq!(tree.range_count(&rect), inside.len() as u64);
        let bsum: f64 = inside.iter().map(|p| p.w).sum();
        prop_assert!((tree.range_sum(&rect) - bsum).abs() <= 1e-7);
        let bmax = inside.iter().map(|p| p.w).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(tree.range_max(&rect), (!inside.is_empty()).then_some(bmax));
    }

    #[test]
    fn btree_rank_equals_partition_point(mut rs in records(80), probe in -600.0f64..600.0) {
        sort_records(&mut rs);
        let bt = BPlusTree::new(&rs);
        let keys: Vec<f64> = rs.iter().map(|r| r.key).collect();
        prop_assert_eq!(bt.rank_inclusive(probe), keys.partition_point(|&k| k <= probe));
    }
}
