//! Extrema of polynomials over closed intervals.
//!
//! This is the "simple calculus operations" step of the paper's MAX query
//! (Eq. 17): the maximum of `P` on `[a, b]` is attained either at an
//! endpoint or at a stationary point (root of `P'`) inside the interval.
//! [`roots_in_interval`] supplies the
//! stationary points.

use crate::polynomial::{Polynomial, ShiftedPolynomial};
use crate::roots::roots_in_interval;

/// Location and value of an interval extremum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalExtremum {
    /// Argmax / argmin within the interval.
    pub at: f64,
    /// The extremal value `P(at)`.
    pub value: f64,
}

/// Maximum of `p` over `[lo, hi]`.
///
/// # Panics
/// Panics if the interval is empty (`lo > hi`) or not finite.
pub fn max_on_interval(p: &Polynomial, lo: f64, hi: f64) -> IntervalExtremum {
    extremum(p, lo, hi, true)
}

/// Minimum of `p` over `[lo, hi]`.
///
/// # Panics
/// Panics if the interval is empty (`lo > hi`) or not finite.
pub fn min_on_interval(p: &Polynomial, lo: f64, hi: f64) -> IntervalExtremum {
    extremum(p, lo, hi, false)
}

fn extremum(p: &Polynomial, lo: f64, hi: f64, want_max: bool) -> IntervalExtremum {
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid interval [{lo}, {hi}]");
    let mut best = IntervalExtremum { at: lo, value: p.eval(lo) };
    let mut consider = |x: f64| {
        let v = p.eval(x);
        if (want_max && v > best.value) || (!want_max && v < best.value) {
            best = IntervalExtremum { at: x, value: v };
        }
    };
    consider(hi);
    if lo < hi {
        for r in roots_in_interval(&p.derivative(), lo, hi) {
            consider(r);
        }
    }
    best
}

/// Maximum of a [`ShiftedPolynomial`] over a raw-key interval `[lo, hi]`.
///
/// The stationary-point search happens in the well-conditioned normalized
/// variable; only the reported location is mapped back to raw keys.
pub fn max_on_interval_shifted(sp: &ShiftedPolynomial, lo: f64, hi: f64) -> IntervalExtremum {
    let e = max_on_interval(sp.inner(), sp.to_normalized(lo), sp.to_normalized(hi));
    IntervalExtremum { at: sp.to_raw(e.at), value: e.value }
}

/// Minimum of a [`ShiftedPolynomial`] over a raw-key interval `[lo, hi]`.
pub fn min_on_interval_shifted(sp: &ShiftedPolynomial, lo: f64, hi: f64) -> IntervalExtremum {
    let e = min_on_interval(sp.inner(), sp.to_normalized(lo), sp.to_normalized(hi));
    IntervalExtremum { at: sp.to_raw(e.at), value: e.value }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn parabola_interior_max() {
        // -(x-2)² + 5 has max 5 at x=2
        let p = Polynomial::new(vec![1.0, 4.0, -1.0]);
        let m = max_on_interval(&p, 0.0, 4.0);
        assert_close(m.at, 2.0, 1e-9);
        assert_close(m.value, 5.0, 1e-9);
    }

    #[test]
    fn parabola_boundary_max() {
        let p = Polynomial::new(vec![1.0, 4.0, -1.0]);
        let m = max_on_interval(&p, 3.0, 6.0);
        assert_close(m.at, 3.0, 1e-12);
        assert_close(m.value, 4.0, 1e-12);
    }

    #[test]
    fn cubic_min_interior() {
        // x³-3x has local min at x=1 (value -2), local max at x=-1 (value 2)
        let p = Polynomial::new(vec![0.0, -3.0, 0.0, 1.0]);
        let mn = min_on_interval(&p, -2.0, 2.0);
        assert_close(mn.at, -2.0, 1e-9); // endpoint -2 gives value -2 too
        assert_close(mn.value, -2.0, 1e-9);
        let mx = max_on_interval(&p, -1.5, 1.5);
        assert_close(mx.at, -1.0, 1e-9);
        assert_close(mx.value, 2.0, 1e-9);
    }

    #[test]
    fn degenerate_interval() {
        let p = Polynomial::new(vec![1.0, 1.0]);
        let m = max_on_interval(&p, 3.0, 3.0);
        assert_eq!(m.at, 3.0);
        assert_close(m.value, 4.0, 1e-12);
    }

    #[test]
    fn constant_polynomial() {
        let p = Polynomial::constant(7.0);
        let m = max_on_interval(&p, -5.0, 5.0);
        assert_eq!(m.value, 7.0);
        let n = min_on_interval(&p, -5.0, 5.0);
        assert_eq!(n.value, 7.0);
    }

    #[test]
    fn linear_extrema_at_endpoints() {
        let p = Polynomial::new(vec![0.0, 2.0]);
        assert_eq!(max_on_interval(&p, -1.0, 3.0).at, 3.0);
        assert_eq!(min_on_interval(&p, -1.0, 3.0).at, -1.0);
    }

    #[test]
    fn brute_force_agreement_quartic() {
        let p = Polynomial::new(vec![0.3, -1.2, 0.0, 2.0, -0.7]);
        let (lo, hi) = (-1.8, 2.1);
        let m = max_on_interval(&p, lo, hi);
        let mut brute = f64::NEG_INFINITY;
        let steps = 200_000;
        for i in 0..=steps {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            brute = brute.max(p.eval(x));
        }
        assert!(m.value >= brute - 1e-7, "analytic {} < brute {}", m.value, brute);
    }

    #[test]
    fn shifted_extrema_roundtrip() {
        // max of -(t²) + 1 over t∈[-1,1] is 1 at t=0; shifted to x=1000±50
        let inner = Polynomial::new(vec![1.0, 0.0, -1.0]);
        let sp = ShiftedPolynomial::new(inner, 1000.0, 50.0);
        let m = max_on_interval_shifted(&sp, 950.0, 1050.0);
        assert_close(m.at, 1000.0, 1e-6);
        assert_close(m.value, 1.0, 1e-9);
        let n = min_on_interval_shifted(&sp, 950.0, 1050.0);
        assert_close(n.value, 0.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn empty_interval_panics() {
        max_on_interval(&Polynomial::constant(0.0), 2.0, 1.0);
    }
}
