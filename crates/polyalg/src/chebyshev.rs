//! Chebyshev-basis utilities.
//!
//! The monomial basis `1, t, t², …` becomes ill-conditioned as the degree
//! grows, even on the normalized interval `[−1, 1]`: the Vandermonde
//! systems solved by the exchange algorithm lose roughly a digit per
//! degree. The Chebyshev polynomials `T_j` are the numerically natural
//! basis for minimax problems — their Vandermonde-like matrices stay
//! well-conditioned — so `polyfit-lp` offers a Chebyshev-basis fitting
//! backend built on this module: solve in `T_j`, then convert the
//! coefficients back to monomials (exact up to rounding) so the rest of
//! the system keeps its single polynomial representation.

use crate::polynomial::Polynomial;

/// Evaluate `Σ_j c_j·T_j(t)` with Clenshaw's recurrence — the stable way
/// to evaluate a Chebyshev expansion.
pub fn eval_clenshaw(coeffs: &[f64], t: f64) -> f64 {
    let mut b1 = 0.0f64;
    let mut b2 = 0.0f64;
    for &c in coeffs.iter().skip(1).rev() {
        let b0 = 2.0 * t * b1 - b2 + c;
        b2 = b1;
        b1 = b0;
    }
    coeffs.first().copied().unwrap_or(0.0) + t * b1 - b2
}

/// The value of `T_j(t)` (reference implementation via the recurrence).
pub fn chebyshev_t(j: usize, t: f64) -> f64 {
    match j {
        0 => 1.0,
        1 => t,
        _ => {
            let mut tm2 = 1.0;
            let mut tm1 = t;
            for _ in 2..=j {
                let cur = 2.0 * t * tm1 - tm2;
                tm2 = tm1;
                tm1 = cur;
            }
            tm1
        }
    }
}

/// Monomial coefficient rows of `T_0 … T_deg` (each row has length
/// `deg + 1`, ascending powers).
fn t_monomial_table(deg: usize) -> Vec<Vec<f64>> {
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(deg + 1);
    rows.push({
        let mut r = vec![0.0; deg + 1];
        r[0] = 1.0;
        r
    });
    if deg >= 1 {
        let mut r = vec![0.0; deg + 1];
        r[1] = 1.0;
        rows.push(r);
    }
    for j in 2..=deg {
        let mut r = vec![0.0; deg + 1];
        // T_j = 2t·T_{j−1} − T_{j−2}
        for (p, &c) in rows[j - 1].iter().enumerate() {
            if c != 0.0 && p < deg {
                r[p + 1] += 2.0 * c;
            }
        }
        for (p, &c) in rows[j - 2].iter().enumerate() {
            r[p] -= c;
        }
        rows.push(r);
    }
    rows
}

/// Convert Chebyshev-expansion coefficients to ascending monomial
/// coefficients: `Σ c_j·T_j(t) = Σ a_p·t^p`.
pub fn chebyshev_to_monomial(coeffs: &[f64]) -> Vec<f64> {
    if coeffs.is_empty() {
        return Vec::new();
    }
    let deg = coeffs.len() - 1;
    let table = t_monomial_table(deg);
    let mut mono = vec![0.0; deg + 1];
    for (j, &c) in coeffs.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        for (p, &tc) in table[j].iter().enumerate() {
            mono[p] += c * tc;
        }
    }
    mono
}

/// Convert ascending monomial coefficients to Chebyshev-expansion
/// coefficients (the inverse of [`chebyshev_to_monomial`]), via the power
/// expansion `t^p = 2^{1−p} Σ' C(p, (p−j)/2)·T_j(t)` (primed sum halves
/// the `j = 0` term).
pub fn monomial_to_chebyshev(mono: &[f64]) -> Vec<f64> {
    if mono.is_empty() {
        return Vec::new();
    }
    let deg = mono.len() - 1;
    let mut cheb = vec![0.0; deg + 1];
    for (p, &a) in mono.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        // binomial row C(p, k)
        let mut binom = vec![0.0f64; p + 1];
        binom[0] = 1.0;
        for k in 1..=p {
            binom[k] = binom[k - 1] * (p - k + 1) as f64 / k as f64;
        }
        let scale = 0.5f64.powi(p as i32 - 1); // 2^{1−p}; the halved j=0 term makes p=0 exact too
        let mut j = p;
        loop {
            let k = (p - j) / 2;
            let coeff = scale * binom[k] * if j == 0 { 0.5 } else { 1.0 };
            cheb[j] += a * coeff;
            if j < 2 {
                break;
            }
            j -= 2;
        }
    }
    cheb
}

/// Wrap a Chebyshev expansion as a monomial [`Polynomial`].
pub fn to_polynomial(coeffs: &[f64]) -> Polynomial {
    Polynomial::new(chebyshev_to_monomial(coeffs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn chebyshev_t_known_values() {
        // T_2 = 2t²−1, T_3 = 4t³−3t
        for &t in &[-1.0, -0.3, 0.0, 0.5, 1.0] {
            assert_close(chebyshev_t(2, t), 2.0 * t * t - 1.0, 1e-12);
            assert_close(chebyshev_t(3, t), 4.0 * t * t * t - 3.0 * t, 1e-12);
        }
    }

    #[test]
    fn clenshaw_matches_direct_sum() {
        let coeffs = [0.5, -1.0, 0.25, 2.0, -0.125];
        for &t in &[-1.0, -0.7, 0.0, 0.33, 0.99] {
            let direct: f64 = coeffs.iter().enumerate().map(|(j, &c)| c * chebyshev_t(j, t)).sum();
            assert_close(eval_clenshaw(&coeffs, t), direct, 1e-12);
        }
    }

    #[test]
    fn to_monomial_roundtrip_eval() {
        let coeffs = [1.0, 0.5, -0.25, 0.125, 2.0];
        let mono = chebyshev_to_monomial(&coeffs);
        let p = Polynomial::new(mono);
        for &t in &[-1.0, -0.5, 0.0, 0.4, 1.0] {
            assert_close(p.eval(t), eval_clenshaw(&coeffs, t), 1e-12);
        }
    }

    #[test]
    fn basis_conversion_roundtrip() {
        let mono = [3.0, -2.0, 1.5, 0.7, -0.3, 0.01];
        let cheb = monomial_to_chebyshev(&mono);
        let back = chebyshev_to_monomial(&cheb);
        for (a, b) in mono.iter().zip(&back) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn t_table_matches_recurrence() {
        let table = t_monomial_table(6);
        for (j, row) in table.iter().enumerate() {
            let p = Polynomial::new(row.clone());
            for &t in &[-0.9, -0.2, 0.1, 0.8] {
                assert_close(p.eval(t), chebyshev_t(j, t), 1e-10);
            }
        }
    }

    #[test]
    fn empty_and_constant() {
        assert!(chebyshev_to_monomial(&[]).is_empty());
        assert_eq!(chebyshev_to_monomial(&[5.0]), vec![5.0]);
        assert_eq!(monomial_to_chebyshev(&[5.0]), vec![5.0]);
        assert_eq!(eval_clenshaw(&[], 0.5), 0.0);
    }

    #[test]
    fn monomial_power_identities() {
        // t² = (T_0 + T_2)/2 ; t³ = (3T_1 + T_3)/4
        let c2 = monomial_to_chebyshev(&[0.0, 0.0, 1.0]);
        assert_close(c2[0], 0.5, 1e-12);
        assert_close(c2[2], 0.5, 1e-12);
        let c3 = monomial_to_chebyshev(&[0.0, 0.0, 0.0, 1.0]);
        assert_close(c3[1], 0.75, 1e-12);
        assert_close(c3[3], 0.25, 1e-12);
    }
}
