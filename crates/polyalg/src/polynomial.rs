//! Dense univariate polynomials over `f64`.
//!
//! Coefficients are stored in ascending order: `coeffs[j]` multiplies `x^j`.
//! The representation is kept *normalized* — no trailing (highest-order)
//! zero coefficients — so `degree()` is meaningful. The zero polynomial is
//! represented by an empty coefficient vector.

use std::fmt;

/// A dense univariate polynomial `P(x) = Σ_j coeffs[j]·x^j`.
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Build a polynomial from ascending coefficients, trimming trailing
    /// zeros (and treating non-finite trailing values as hard errors in
    /// debug builds).
    pub fn new(coeffs: Vec<f64>) -> Self {
        debug_assert!(
            coeffs.iter().all(|c| c.is_finite()),
            "polynomial coefficients must be finite"
        );
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// `P(x) = Π_i (x − r_i)`, handy for building test fixtures with known
    /// roots.
    pub fn from_roots(roots: &[f64]) -> Self {
        let mut p = Polynomial::constant(1.0);
        for &r in roots {
            p = p.mul(&Polynomial::new(vec![-r, 1.0]));
        }
        p
    }

    fn normalize(&mut self) {
        while matches!(self.coeffs.last(), Some(&c) if c == 0.0) {
            self.coeffs.pop();
        }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Ascending coefficient slice (no trailing zeros).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Leading (highest-order) coefficient; 0 for the zero polynomial.
    pub fn leading(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// Evaluate with Horner's rule — `O(deg)` multiplications, the hot path
    /// of every PolyFit query.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self.coeffs.iter().enumerate().skip(1).map(|(j, &c)| c * j as f64).collect();
        Polynomial::new(coeffs)
    }

    /// Antiderivative with integration constant 0.
    pub fn antiderivative(&self) -> Polynomial {
        if self.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(0.0);
        for (j, &c) in self.coeffs.iter().enumerate() {
            coeffs.push(c / (j + 1) as f64);
        }
        Polynomial::new(coeffs)
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        Polynomial::new(coeffs)
    }

    /// Polynomial subtraction `self − other`.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            coeffs[i] -= c;
        }
        Polynomial::new(coeffs)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }

    /// Scale every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q·divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Polynomial) -> (Polynomial, Polynomial) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        let dlen = divisor.coeffs.len();
        if self.coeffs.len() < dlen {
            return (Polynomial::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0.0; self.coeffs.len() - dlen + 1];
        let lead = divisor.leading();
        for i in (dlen - 1..rem.len()).rev() {
            let q = rem[i] / lead;
            let qi = i + 1 - dlen;
            quot[qi] = q;
            if q != 0.0 {
                for (j, &dc) in divisor.coeffs.iter().enumerate() {
                    rem[qi + j] -= q * dc;
                }
            }
            rem[i] = 0.0; // kill residual rounding noise in the cancelled term
        }
        rem.truncate(dlen - 1);
        (Polynomial::new(quot), Polynomial::new(rem))
    }

    /// Infinity norm of the coefficient vector.
    pub fn coeff_norm(&self) -> f64 {
        self.coeffs.iter().fold(0.0, |m, c| m.max(c.abs()))
    }

    /// Compose with the affine map `x ↦ a·x + b`, returning the polynomial
    /// `Q(x) = P(a·x + b)` in expanded form. Used by tests to cross-check
    /// [`ShiftedPolynomial`].
    pub fn compose_affine(&self, a: f64, b: f64) -> Polynomial {
        let inner = Polynomial::new(vec![b, a]);
        let mut acc = Polynomial::zero();
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul(&inner).add(&Polynomial::constant(c));
        }
        acc
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (j, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            first = false;
            match j {
                0 => write!(f, "{}", c.abs())?,
                1 => write!(f, "{}·x", c.abs())?,
                _ => write!(f, "{}·x^{}", c.abs(), j)?,
            }
        }
        Ok(())
    }
}

/// A polynomial evaluated in a *normalized* variable `t = (x − center)/scale`.
///
/// Minimax fitting over raw keys (e.g. Unix timestamps ≈ 10⁹) is numerically
/// hopeless in the monomial basis: `k^4` overflows the dynamic range the LP
/// can condition. PolyFit therefore fits each segment in the variable `t ∈
/// [−1, 1]` obtained by mapping the segment interval affinely onto `[−1, 1]`,
/// and queries evaluate through this wrapper. The composition is exact — a
/// degree-`d` polynomial in `t` is a degree-`d` polynomial in `x` — so none
/// of the paper's error analysis changes.
#[derive(Clone, Debug, PartialEq)]
pub struct ShiftedPolynomial {
    poly: Polynomial,
    center: f64,
    scale: f64,
}

impl ShiftedPolynomial {
    /// Wrap `poly` so that `eval(x) = poly((x − center)/scale)`.
    ///
    /// # Panics
    /// Panics if `scale` is zero or non-finite.
    pub fn new(poly: Polynomial, center: f64, scale: f64) -> Self {
        assert!(scale.is_finite() && scale != 0.0, "invalid scale {scale}");
        assert!(center.is_finite(), "invalid center {center}");
        ShiftedPolynomial { poly, center, scale }
    }

    /// A shifted polynomial with the identity transform.
    pub fn unshifted(poly: Polynomial) -> Self {
        ShiftedPolynomial::new(poly, 0.0, 1.0)
    }

    /// The affine map parameters for the interval `[lo, hi] → [−1, 1]`
    /// (degenerate intervals map onto `t = 0` with unit scale).
    pub fn normalizer(lo: f64, hi: f64) -> (f64, f64) {
        let center = 0.5 * (lo + hi);
        let half = 0.5 * (hi - lo);
        if half > 0.0 {
            (center, half)
        } else {
            (center, 1.0)
        }
    }

    /// Evaluate at a raw key.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.poly.eval((x - self.center) / self.scale)
    }

    /// Map a raw key into the normalized variable.
    #[inline]
    pub fn to_normalized(&self, x: f64) -> f64 {
        (x - self.center) / self.scale
    }

    /// Map a normalized variable back to a raw key.
    #[inline]
    pub fn to_raw(&self, t: f64) -> f64 {
        t * self.scale + self.center
    }

    /// The inner polynomial in the normalized variable.
    pub fn inner(&self) -> &Polynomial {
        &self.poly
    }

    /// Center of the affine transform.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Scale of the affine transform.
    pub fn scale_factor(&self) -> f64 {
        self.scale
    }

    /// Number of stored coefficients (what an index must keep per segment).
    pub fn coeff_count(&self) -> usize {
        self.poly.coeffs().len()
    }

    /// Expand to an equivalent polynomial in the raw variable. Numerically
    /// risky for large centers — intended for tests and diagnostics only.
    pub fn expand(&self) -> Polynomial {
        // P((x − c)/s) = P(x/s − c/s)
        self.poly.compose_affine(1.0 / self.scale, -self.center / self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn eval_matches_naive() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0, 0.5]);
        for &x in &[-2.5f64, -1.0, 0.0, 0.3, 1.0, 4.2] {
            let naive: f64 = p.coeffs().iter().enumerate().map(|(j, c)| c * x.powi(j as i32)).sum();
            assert_close(p.eval(x), naive, 1e-12 * naive.abs().max(1.0));
        }
    }

    #[test]
    fn zero_polynomial_behaviour() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(17.0), 0.0);
        assert!(z.derivative().is_zero());
        let p = Polynomial::new(vec![0.0, 0.0, 0.0]);
        assert!(p.is_zero());
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn derivative_of_cubic() {
        let p = Polynomial::new(vec![5.0, 3.0, -2.0, 1.0]); // 5+3x-2x²+x³
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[3.0, -4.0, 3.0]);
    }

    #[test]
    fn antiderivative_roundtrip() {
        let p = Polynomial::new(vec![2.0, -6.0, 12.0]);
        let ad = p.antiderivative();
        assert_eq!(ad.derivative(), p);
        assert_eq!(ad.eval(0.0), 0.0);
    }

    #[test]
    fn arithmetic_identities() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let q = Polynomial::new(vec![-1.0, 0.0, 0.0, 4.0]);
        assert_eq!(p.add(&q).sub(&q), p);
        let prod = p.mul(&q);
        for &x in &[-1.5, 0.0, 0.7, 2.0] {
            assert_close(prod.eval(x), p.eval(x) * q.eval(x), 1e-9);
        }
    }

    #[test]
    fn mul_by_zero_is_zero() {
        let p = Polynomial::new(vec![1.0, 2.0]);
        assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn div_rem_reconstructs() {
        let p = Polynomial::new(vec![-6.0, 11.0, -6.0, 1.0]); // (x-1)(x-2)(x-3)
        let d = Polynomial::new(vec![-2.0, 1.0]); // x-2
        let (q, r) = p.div_rem(&d);
        assert!(r.coeff_norm() < 1e-10, "remainder {r:?}");
        let back = q.mul(&d).add(&r);
        for (a, b) in back.coeffs().iter().zip(p.coeffs()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn div_rem_smaller_degree() {
        let p = Polynomial::new(vec![1.0, 1.0]);
        let d = Polynomial::new(vec![0.0, 0.0, 1.0]);
        let (q, r) = p.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, p);
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn div_by_zero_panics() {
        let p = Polynomial::new(vec![1.0]);
        let _ = p.div_rem(&Polynomial::zero());
    }

    #[test]
    fn from_roots_has_those_roots() {
        let p = Polynomial::from_roots(&[1.0, -2.0, 0.5]);
        for &r in &[1.0, -2.0, 0.5] {
            assert_close(p.eval(r), 0.0, 1e-10);
        }
        assert_eq!(p.degree(), Some(3));
    }

    #[test]
    fn compose_affine_matches_pointwise() {
        let p = Polynomial::new(vec![1.0, -3.0, 2.0, 1.0]);
        let q = p.compose_affine(2.0, -1.0);
        for &x in &[-2.0, -0.5, 0.0, 1.0, 3.0] {
            assert_close(q.eval(x), p.eval(2.0 * x - 1.0), 1e-9);
        }
    }

    #[test]
    fn shifted_polynomial_eval() {
        let inner = Polynomial::new(vec![0.0, 0.0, 1.0]); // t²
        let sp = ShiftedPolynomial::new(inner, 100.0, 10.0);
        assert_close(sp.eval(100.0), 0.0, 1e-12);
        assert_close(sp.eval(110.0), 1.0, 1e-12);
        assert_close(sp.eval(90.0), 1.0, 1e-12);
    }

    #[test]
    fn shifted_expand_agrees() {
        let inner = Polynomial::new(vec![1.0, 2.0, -1.0]);
        let sp = ShiftedPolynomial::new(inner, 3.0, 2.0);
        let raw = sp.expand();
        for &x in &[-1.0, 0.0, 3.0, 5.5] {
            assert_close(raw.eval(x), sp.eval(x), 1e-9);
        }
    }

    #[test]
    fn normalizer_maps_interval() {
        let (c, s) = ShiftedPolynomial::normalizer(10.0, 30.0);
        assert_eq!(c, 20.0);
        assert_eq!(s, 10.0);
        let (c, s) = ShiftedPolynomial::normalizer(5.0, 5.0);
        assert_eq!(c, 5.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn zero_scale_panics() {
        ShiftedPolynomial::new(Polynomial::constant(1.0), 0.0, 0.0);
    }

    #[test]
    fn display_formats() {
        let p = Polynomial::new(vec![-1.0, 0.0, 2.0]);
        assert_eq!(format!("{p}"), "2·x^2 - 1");
        assert_eq!(format!("{}", Polynomial::zero()), "0");
    }
}
