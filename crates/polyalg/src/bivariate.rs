//! Bivariate polynomials of bounded total degree for the two-key extension.
//!
//! Section VI of the paper approximates the 2-D cumulative count surface
//! with `P(u, v) = Σ_{i+j ≤ deg} a_ij u^i v^j`. We store coefficients in a
//! fixed *graded lexicographic* monomial order so the fitting LP, the index
//! serialization, and evaluation all agree on term layout.
//!
//! Like the 1-D case, fitting happens in normalized coordinates: the segment
//! rectangle is mapped affinely onto `[−1, 1]²` (see
//! [`BivariatePoly::axis_normalizer`]).

/// Number of monomials of total degree ≤ `deg` in two variables.
pub fn monomial_count(deg: usize) -> usize {
    (deg + 1) * (deg + 2) / 2
}

/// Enumerate `(i, j)` exponent pairs with `i + j ≤ deg` in graded-lex order:
/// `(0,0), (1,0), (0,1), (2,0), (1,1), (0,2), …`
pub fn monomials(deg: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..=deg).flat_map(move |total| (0..=total).map(move |j| (total - j, j)))
}

/// A bivariate polynomial `P(u, v) = Σ a_ij u^i v^j` with `i + j ≤ deg`,
/// evaluated in normalized coordinates
/// `s = (u − cu)/su`, `t = (v − cv)/sv`.
#[derive(Clone, Debug, PartialEq)]
pub struct BivariatePoly {
    deg: usize,
    /// Coefficients in graded-lex monomial order (see [`monomials`]).
    coeffs: Vec<f64>,
    cu: f64,
    su: f64,
    cv: f64,
    sv: f64,
}

impl BivariatePoly {
    /// Build from coefficients in graded-lex order with an affine normalizer
    /// per axis.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != monomial_count(deg)` or a scale is invalid.
    pub fn new(deg: usize, coeffs: Vec<f64>, cu: f64, su: f64, cv: f64, sv: f64) -> Self {
        assert_eq!(coeffs.len(), monomial_count(deg), "coefficient count must match total degree");
        assert!(su.is_finite() && su != 0.0, "invalid u-scale {su}");
        assert!(sv.is_finite() && sv != 0.0, "invalid v-scale {sv}");
        BivariatePoly { deg, coeffs, cu, su, cv, sv }
    }

    /// Identity-normalizer constructor (raw coordinates).
    pub fn unnormalized(deg: usize, coeffs: Vec<f64>) -> Self {
        BivariatePoly::new(deg, coeffs, 0.0, 1.0, 0.0, 1.0)
    }

    /// Normalizer parameters mapping `[lo, hi] → [−1, 1]` on one axis.
    pub fn axis_normalizer(lo: f64, hi: f64) -> (f64, f64) {
        let center = 0.5 * (lo + hi);
        let half = 0.5 * (hi - lo);
        if half > 0.0 {
            (center, half)
        } else {
            (center, 1.0)
        }
    }

    /// Total degree bound.
    pub fn degree(&self) -> usize {
        self.deg
    }

    /// Coefficients in graded-lex order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Number of stored coefficients.
    pub fn coeff_count(&self) -> usize {
        self.coeffs.len()
    }

    /// The affine normalizer parameters `(cu, su, cv, sv)` mapping raw
    /// coordinates into the fitted square: `s = (u − cu)/su`,
    /// `t = (v − cv)/sv`. Exposed so compiled evaluation arenas and
    /// serializers can reproduce [`Self::eval`] exactly.
    pub fn normalizers(&self) -> (f64, f64, f64, f64) {
        (self.cu, self.su, self.cv, self.sv)
    }

    /// Map raw coordinates into the normalized square.
    #[inline]
    pub fn to_normalized(&self, u: f64, v: f64) -> (f64, f64) {
        ((u - self.cu) / self.su, (v - self.cv) / self.sv)
    }

    /// Evaluate at raw coordinates `(u, v)`.
    ///
    /// Power tables for `s^i` and `t^j` are built once per call — degree is
    /// tiny (≤ 8 in practice) so this stays allocation-free via fixed-size
    /// stack buffers.
    #[inline]
    pub fn eval(&self, u: f64, v: f64) -> f64 {
        let (s, t) = self.to_normalized(u, v);
        self.eval_normalized(s, t)
    }

    /// Evaluate directly in normalized coordinates.
    pub fn eval_normalized(&self, s: f64, t: f64) -> f64 {
        const MAX_DEG: usize = 16;
        assert!(self.deg <= MAX_DEG, "degree {} exceeds supported bound", self.deg);
        let mut spow = [1.0f64; MAX_DEG + 1];
        let mut tpow = [1.0f64; MAX_DEG + 1];
        for d in 1..=self.deg {
            spow[d] = spow[d - 1] * s;
            tpow[d] = tpow[d - 1] * t;
        }
        let mut acc = 0.0;
        for ((i, j), &c) in monomials(self.deg).zip(&self.coeffs) {
            acc += c * spow[i] * tpow[j];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn monomial_counts() {
        assert_eq!(monomial_count(0), 1);
        assert_eq!(monomial_count(1), 3);
        assert_eq!(monomial_count(2), 6);
        assert_eq!(monomial_count(3), 10);
        for d in 0..8 {
            assert_eq!(monomials(d).count(), monomial_count(d));
        }
    }

    #[test]
    fn monomial_order_is_graded_lex() {
        let order: Vec<_> = monomials(2).collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)]);
    }

    #[test]
    fn constant_eval() {
        let p = BivariatePoly::unnormalized(0, vec![3.5]);
        assert_eq!(p.eval(10.0, -2.0), 3.5);
    }

    #[test]
    fn plane_eval() {
        // P = 1 + 2u + 3v
        let p = BivariatePoly::unnormalized(1, vec![1.0, 2.0, 3.0]);
        assert_close(p.eval(1.0, 1.0), 6.0, 1e-12);
        assert_close(p.eval(-1.0, 2.0), 5.0, 1e-12);
    }

    #[test]
    fn quadratic_eval_matches_manual() {
        // order: 1, u, v, u², uv, v²
        let p = BivariatePoly::unnormalized(2, vec![1.0, 0.0, 0.0, 2.0, -1.0, 0.5]);
        let f = |u: f64, v: f64| 1.0 + 2.0 * u * u - u * v + 0.5 * v * v;
        for &(u, v) in &[(0.0, 0.0), (1.0, 2.0), (-0.5, 0.3), (3.0, -4.0)] {
            assert_close(p.eval(u, v), f(u, v), 1e-10);
        }
    }

    #[test]
    fn normalization_roundtrip() {
        // Q(s,t) = s + t on the rectangle [10,20]×[0,100]
        let (cu, su) = BivariatePoly::axis_normalizer(10.0, 20.0);
        let (cv, sv) = BivariatePoly::axis_normalizer(0.0, 100.0);
        let p = BivariatePoly::new(1, vec![0.0, 1.0, 1.0], cu, su, cv, sv);
        assert_close(p.eval(15.0, 50.0), 0.0, 1e-12); // center → (0,0)
        assert_close(p.eval(20.0, 100.0), 2.0, 1e-12); // corner → (1,1)
        assert_close(p.eval(10.0, 0.0), -2.0, 1e-12); // corner → (-1,-1)
    }

    #[test]
    fn degenerate_axis_uses_unit_scale() {
        let (c, s) = BivariatePoly::axis_normalizer(5.0, 5.0);
        assert_eq!((c, s), (5.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "coefficient count")]
    fn wrong_coeff_count_panics() {
        BivariatePoly::unnormalized(2, vec![1.0, 2.0]);
    }
}
