//! # polyfit-poly — polynomial algebra substrate
//!
//! Dense univariate polynomials with robust real-root isolation and interval
//! extrema, plus total-degree-bounded bivariate polynomials. This crate is the
//! numeric foundation of the PolyFit reproduction:
//!
//! * [`Polynomial`] — coefficient-vector polynomials with Horner evaluation,
//!   calculus, and arithmetic (needed by the Sturm machinery).
//! * [`ShiftedPolynomial`] — a polynomial composed with an affine change of
//!   variable, used to keep fitting well conditioned on raw keys
//!   (timestamps in the millions would otherwise overflow `k^deg`).
//! * [`roots`] — Sturm-sequence root counting and bisection/Newton isolation,
//!   used to maximise a fitted polynomial over a query interval (Eq. 17 of
//!   the paper).
//! * [`extrema`] — closed-form maximisation/minimisation of a polynomial over
//!   a closed interval.
//! * [`bivariate`] — `P(u, v) = Σ_{i+j≤deg} a_ij u^i v^j` for the two-key
//!   extension (Section VI).

pub mod bivariate;
pub mod chebyshev;
pub mod extrema;
pub mod polynomial;
pub mod roots;

pub use bivariate::{monomial_count, monomials, BivariatePoly};
pub use extrema::{
    max_on_interval, max_on_interval_shifted, min_on_interval, min_on_interval_shifted,
    IntervalExtremum,
};
pub use polynomial::{Polynomial, ShiftedPolynomial};
pub use roots::{isolate_roots, roots_in_interval, SturmChain};
