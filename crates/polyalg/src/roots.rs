//! Real-root isolation via Sturm sequences with bisection + Newton polishing.
//!
//! PolyFit's MAX query (paper Eq. 17) maximises a fitted polynomial over the
//! part of a segment that intersects the query range. The maximum is attained
//! at an endpoint or a stationary point, so we must find every real root of
//! the derivative inside an interval — reliably, for arbitrary degree, with
//! multiple roots and clustered roots handled gracefully.
//!
//! The classic tool is the *Sturm chain* `p₀ = p`, `p₁ = p′`,
//! `p_{i+1} = −rem(p_{i−1}, p_i)`: the number of distinct real roots of `p`
//! in `(a, b]` equals `V(a) − V(b)` where `V(x)` counts sign changes in the
//! chain evaluated at `x`. We isolate roots by recursive bisection on the
//! root count and then refine each isolated root with safeguarded
//! Newton/bisection.

use crate::polynomial::Polynomial;

/// Relative tolerance used when deciding that a chain remainder has degraded
/// to numerical noise and should be treated as zero.
const REMAINDER_NOISE: f64 = 1e-12;

/// A precomputed Sturm chain for a polynomial.
#[derive(Clone, Debug)]
pub struct SturmChain {
    chain: Vec<Polynomial>,
}

impl SturmChain {
    /// Build the Sturm chain of `p`. The chain of the zero polynomial is
    /// empty; constants yield a single-element chain.
    pub fn new(p: &Polynomial) -> Self {
        let mut chain: Vec<Polynomial> = Vec::new();
        if p.is_zero() {
            return SturmChain { chain };
        }
        chain.push(p.clone());
        let d = p.derivative();
        if d.is_zero() {
            return SturmChain { chain };
        }
        chain.push(d);
        loop {
            let n = chain.len();
            let (_, mut rem) = chain[n - 2].div_rem(&chain[n - 1]);
            // Treat tiny remainders (relative to the operand scale) as exact
            // zero: they signal a repeated root up to rounding.
            let scale = chain[n - 2].coeff_norm().max(chain[n - 1].coeff_norm());
            if rem.coeff_norm() <= REMAINDER_NOISE * scale.max(1.0) {
                break;
            }
            rem = rem.scale(-1.0);
            chain.push(rem);
            if chain.last().map(|q| q.degree()) == Some(Some(0)) {
                break;
            }
        }
        SturmChain { chain }
    }

    /// Number of sign changes of the chain at `x` (zeros are skipped, per
    /// Sturm's theorem).
    pub fn sign_changes(&self, x: f64) -> usize {
        let mut changes = 0;
        let mut last = 0.0f64;
        for p in &self.chain {
            let v = p.eval(x);
            if v == 0.0 {
                continue;
            }
            if last != 0.0 && (v > 0.0) != (last > 0.0) {
                changes += 1;
            }
            last = v;
        }
        changes
    }

    /// Number of *distinct* real roots in the half-open interval `(a, b]`.
    pub fn count_roots(&self, a: f64, b: f64) -> usize {
        if self.chain.is_empty() || a >= b {
            return 0;
        }
        self.sign_changes(a).saturating_sub(self.sign_changes(b))
    }
}

/// Find all distinct real roots of `p` in the closed interval `[lo, hi]`,
/// sorted ascending. Multiple roots are reported once.
///
/// Roots are refined to roughly machine precision relative to the interval
/// width. Returns an empty vector for constant and zero polynomials (the
/// zero polynomial vanishes everywhere; callers in PolyFit treat that case
/// separately — a constant segment has its extremum at any point).
pub fn roots_in_interval(p: &Polynomial, lo: f64, hi: f64) -> Vec<f64> {
    assert!(lo.is_finite() && hi.is_finite(), "interval must be finite");
    if hi < lo || p.is_zero() || p.degree() == Some(0) {
        return Vec::new();
    }
    if p.degree() == Some(1) {
        // Closed form avoids the chain entirely for the common linear case.
        let c = p.coeffs();
        let r = -c[0] / c[1];
        return if r >= lo && r <= hi { vec![r] } else { Vec::new() };
    }
    if p.degree() == Some(2) {
        // Quadratic closed form (degree-3 fits differentiate to this —
        // the hot path of continuous MAX certification).
        let c = p.coeffs();
        let (a, b, c0) = (c[2], c[1], c[0]);
        let disc = b * b - 4.0 * a * c0;
        if disc < 0.0 {
            return Vec::new();
        }
        let sq = disc.sqrt();
        // Numerically stable pair: avoid cancellation in −b ± √disc.
        let q = -0.5 * (b + b.signum() * sq);
        let (r1, r2) = if b == 0.0 {
            let r = (sq / (2.0 * a)).abs();
            (-r, r)
        } else {
            (q / a, if q != 0.0 { c0 / q } else { q / a })
        };
        let (mut r1, mut r2) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let mut out = Vec::with_capacity(2);
        if r1 >= lo && r1 <= hi {
            out.push(r1);
        }
        if (r2 - r1).abs() > 1e-14 * r2.abs().max(1.0) && r2 >= lo && r2 <= hi {
            out.push(r2);
        }
        let _ = (&mut r1, &mut r2);
        return out;
    }
    let chain = SturmChain::new(p);
    let mut out = Vec::new();
    // Endpoints are excluded by the half-open Sturm count; test them
    // explicitly with a width-relative tolerance.
    let width = (hi - lo).max(f64::MIN_POSITIVE);
    let ftol = endpoint_tolerance(p, lo, hi);
    if p.eval(lo).abs() <= ftol {
        out.push(lo);
    }
    isolate_recursive(p, &chain, lo, hi, &mut out, width * 1e-14, 0);
    // `isolate_recursive` covers (lo, hi]; dedup near-coincident reports.
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.dedup_by(|a, b| (*a - *b).abs() <= width * 1e-12);
    out
}

/// Convenience alias matching the crate's public vocabulary.
pub fn isolate_roots(p: &Polynomial, lo: f64, hi: f64) -> Vec<f64> {
    roots_in_interval(p, lo, hi)
}

/// A forgiving "is this value a root" tolerance: scaled by the polynomial's
/// magnitude over the interval.
fn endpoint_tolerance(p: &Polynomial, lo: f64, hi: f64) -> f64 {
    let m = p.eval(lo).abs().max(p.eval(hi).abs()).max(p.coeff_norm());
    m.max(1.0) * 1e-12
}

fn isolate_recursive(
    p: &Polynomial,
    chain: &SturmChain,
    lo: f64,
    hi: f64,
    out: &mut Vec<f64>,
    xtol: f64,
    depth: usize,
) {
    let count = chain.count_roots(lo, hi);
    if count == 0 {
        return;
    }
    let width = hi - lo;
    if count == 1 {
        out.push(refine_root(p, lo, hi));
        return;
    }
    if width <= xtol || depth > 120 {
        // Cluster of roots tighter than the tolerance: report the midpoint.
        out.push(0.5 * (lo + hi));
        return;
    }
    let mid = 0.5 * (lo + hi);
    isolate_recursive(p, chain, lo, mid, out, xtol, depth + 1);
    isolate_recursive(p, chain, mid, hi, out, xtol, depth + 1);
}

/// Refine a root known to lie in `(lo, hi]` where `p` has exactly one
/// distinct root. Uses bisection when the signs bracket, falling back to
/// Newton steps clamped to the bracket (handles even-multiplicity roots
/// where no sign change exists).
fn refine_root(p: &Polynomial, mut lo: f64, mut hi: f64) -> f64 {
    let fhi = p.eval(hi);
    if fhi == 0.0 {
        return hi;
    }
    // The Sturm count is over the half-open interval (lo, hi]; if `lo`
    // itself is a root (e.g. a bisection midpoint landed on one) the counted
    // root lies strictly inside, so nudge the bracket inward.
    let mut flo = p.eval(lo);
    let mut guard = 0;
    while flo == 0.0 && guard < 64 {
        lo += (hi - lo) * 1e-9 + f64::EPSILON * lo.abs().max(1.0);
        flo = p.eval(lo);
        guard += 1;
    }
    if flo == 0.0 {
        return lo;
    }
    let deriv = p.derivative();
    if (flo > 0.0) != (fhi > 0.0) {
        // Bracketing bisection with a Newton accelerator.
        let mut x = 0.5 * (lo + hi);
        for _ in 0..200 {
            let fx = p.eval(x);
            if fx == 0.0 {
                return x;
            }
            if (fx > 0.0) == (flo > 0.0) {
                lo = x;
            } else {
                hi = x;
            }
            // Try Newton from the current iterate; accept only if it stays
            // inside the bracket.
            let dx = deriv.eval(x);
            let newton = if dx != 0.0 { x - fx / dx } else { f64::NAN };
            x = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if hi - lo <= f64::EPSILON * (hi.abs().max(lo.abs()).max(1.0)) {
                break;
            }
        }
        return 0.5 * (lo + hi);
    }
    // Even multiplicity: minimise |p| by Newton on p/p' (which has a simple
    // root there), safeguarded by golden-section style shrinking.
    let mut x = 0.5 * (lo + hi);
    for _ in 0..200 {
        let fx = p.eval(x);
        let dx = deriv.eval(x);
        if fx == 0.0 || dx == 0.0 {
            break;
        }
        let step = fx / dx;
        let next = (x - step).clamp(lo, hi);
        if (next - x).abs() <= f64::EPSILON * x.abs().max(1.0) {
            x = next;
            break;
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::Polynomial;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn sturm_counts_simple_roots() {
        // (x-1)(x-2)(x-3): three roots in (0, 4]
        let p = Polynomial::from_roots(&[1.0, 2.0, 3.0]);
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_roots(0.0, 4.0), 3);
        assert_eq!(chain.count_roots(1.5, 2.5), 1);
        assert_eq!(chain.count_roots(3.5, 9.0), 0);
    }

    #[test]
    fn sturm_counts_distinct_roots_with_multiplicity() {
        // (x-1)²(x-3): Sturm counts distinct roots → 2 in (0, 4]
        let p = Polynomial::from_roots(&[1.0, 1.0, 3.0]);
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_roots(0.0, 4.0), 2);
    }

    #[test]
    fn isolates_cubic_roots() {
        let p = Polynomial::from_roots(&[-1.5, 0.25, 2.0]);
        let roots = roots_in_interval(&p, -10.0, 10.0);
        assert_eq!(roots.len(), 3);
        assert_close(roots[0], -1.5, 1e-9);
        assert_close(roots[1], 0.25, 1e-9);
        assert_close(roots[2], 2.0, 1e-9);
    }

    #[test]
    fn respects_interval_bounds() {
        let p = Polynomial::from_roots(&[-1.0, 1.0, 5.0]);
        let roots = roots_in_interval(&p, 0.0, 2.0);
        assert_eq!(roots.len(), 1);
        assert_close(roots[0], 1.0, 1e-9);
    }

    #[test]
    fn endpoint_root_found() {
        let p = Polynomial::from_roots(&[0.0, 2.0]);
        let roots = roots_in_interval(&p, 0.0, 1.0);
        assert_eq!(roots.len(), 1);
        assert_close(roots[0], 0.0, 1e-12);
        let roots = roots_in_interval(&p, 1.0, 2.0);
        assert_eq!(roots.len(), 1);
        assert_close(roots[0], 2.0, 1e-9);
    }

    #[test]
    fn double_root_reported_once() {
        let p = Polynomial::from_roots(&[1.0, 1.0]);
        let roots = roots_in_interval(&p, 0.0, 2.0);
        assert_eq!(roots.len(), 1);
        assert_close(roots[0], 1.0, 1e-6);
    }

    #[test]
    fn no_real_roots() {
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // x²+1
        assert!(roots_in_interval(&p, -100.0, 100.0).is_empty());
    }

    #[test]
    fn linear_closed_form() {
        let p = Polynomial::new(vec![-3.0, 2.0]); // 2x-3
        let roots = roots_in_interval(&p, 0.0, 2.0);
        assert_eq!(roots, vec![1.5]);
        assert!(roots_in_interval(&p, 2.0, 3.0).is_empty());
    }

    #[test]
    fn constant_and_zero_have_no_isolated_roots() {
        assert!(roots_in_interval(&Polynomial::constant(4.0), -1.0, 1.0).is_empty());
        assert!(roots_in_interval(&Polynomial::zero(), -1.0, 1.0).is_empty());
    }

    #[test]
    fn clustered_roots() {
        let p = Polynomial::from_roots(&[1.0, 1.0 + 1e-5]);
        let roots = roots_in_interval(&p, 0.0, 2.0);
        assert_eq!(roots.len(), 2, "roots {roots:?}");
        assert_close(roots[0], 1.0, 1e-8);
        assert_close(roots[1], 1.0 + 1e-5, 1e-8);
    }

    #[test]
    fn quintic_with_scaled_coeffs() {
        let p = Polynomial::from_roots(&[-0.9, -0.3, 0.1, 0.4, 0.85]).scale(123.0);
        let roots = roots_in_interval(&p, -1.0, 1.0);
        assert_eq!(roots.len(), 5);
        for (r, expect) in roots.iter().zip([-0.9, -0.3, 0.1, 0.4, 0.85]) {
            assert_close(*r, expect, 1e-8);
        }
    }

    #[test]
    fn empty_interval() {
        let p = Polynomial::from_roots(&[1.0]);
        assert!(roots_in_interval(&p, 2.0, 1.0).is_empty());
    }
}
