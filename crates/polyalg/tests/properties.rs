//! Property-based tests for the polynomial algebra substrate.

use proptest::prelude::*;

use polyfit_poly::bivariate::{monomial_count, monomials, BivariatePoly};
use polyfit_poly::chebyshev::{
    chebyshev_t, chebyshev_to_monomial, eval_clenshaw, monomial_to_chebyshev,
};
use polyfit_poly::{max_on_interval, min_on_interval, roots_in_interval, Polynomial, SturmChain};

fn coeffs_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn div_rem_reconstructs(a in coeffs_strategy(8), b in coeffs_strategy(5)) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        prop_assume!(!pb.is_zero());
        prop_assume!(pb.leading().abs() > 1e-3); // avoid wild quotient blowup
        let (q, r) = pa.div_rem(&pb);
        let back = q.mul(&pb).add(&r);
        // Compare by evaluation (coefficient vectors may differ in length).
        for &x in &[-1.5, -0.5, 0.0, 0.7, 1.3] {
            let scale = pa.eval(x).abs().max(1.0);
            prop_assert!((back.eval(x) - pa.eval(x)).abs() <= 1e-6 * scale);
        }
        if let (Some(dr), Some(db)) = (r.degree(), pb.degree()) {
            prop_assert!(dr < db, "remainder degree {dr} !< divisor degree {db}");
        }
    }

    #[test]
    fn arithmetic_eval_homomorphism(a in coeffs_strategy(6), b in coeffs_strategy(6), x in -2.0f64..2.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let scale = (pa.eval(x).abs() + pb.eval(x).abs()).max(1.0);
        prop_assert!((pa.add(&pb).eval(x) - (pa.eval(x) + pb.eval(x))).abs() <= 1e-9 * scale);
        prop_assert!((pa.sub(&pb).eval(x) - (pa.eval(x) - pb.eval(x))).abs() <= 1e-9 * scale);
        let pscale = (pa.eval(x) * pb.eval(x)).abs().max(1.0);
        prop_assert!((pa.mul(&pb).eval(x) - pa.eval(x) * pb.eval(x)).abs() <= 1e-8 * pscale);
    }

    #[test]
    fn derivative_antiderivative_roundtrip(a in coeffs_strategy(7)) {
        let p = Polynomial::new(a);
        let back = p.antiderivative().derivative();
        for &x in &[-1.0, 0.0, 0.5, 2.0] {
            let scale = p.eval(x).abs().max(1.0);
            prop_assert!((back.eval(x) - p.eval(x)).abs() <= 1e-9 * scale);
        }
    }

    #[test]
    fn sturm_count_matches_isolated_roots(rs in proptest::collection::vec(-4.0f64..4.0, 1..5)) {
        let mut rs = rs;
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs.dedup_by(|a, b| (*a - *b).abs() < 1e-2);
        let p = Polynomial::from_roots(&rs);
        let chain = SturmChain::new(&p);
        // Count over an interval strictly containing all roots.
        prop_assert_eq!(chain.count_roots(-5.0, 5.0), rs.len());
        let found = roots_in_interval(&p, -5.0, 5.0);
        prop_assert_eq!(found.len(), rs.len());
    }

    #[test]
    fn extrema_bracket_all_samples(a in coeffs_strategy(6), lo in -3.0f64..0.0, width in 0.1f64..4.0) {
        let p = Polynomial::new(a);
        let hi = lo + width;
        let mx = max_on_interval(&p, lo, hi);
        let mn = min_on_interval(&p, lo, hi);
        prop_assert!(mx.value >= mn.value);
        for i in 0..=100 {
            let x = lo + width * i as f64 / 100.0;
            let v = p.eval(x);
            let tol = 1e-9 * v.abs().max(1.0);
            prop_assert!(v <= mx.value + tol);
            prop_assert!(v >= mn.value - tol);
        }
        prop_assert!(mx.at >= lo && mx.at <= hi);
        prop_assert!(mn.at >= lo && mn.at <= hi);
    }

    #[test]
    fn chebyshev_conversion_roundtrip(a in coeffs_strategy(9)) {
        let cheb = monomial_to_chebyshev(&a);
        let back = chebyshev_to_monomial(&cheb);
        prop_assert_eq!(back.len(), a.len());
        for (x, y) in a.iter().zip(&back) {
            prop_assert!((x - y).abs() <= 1e-8 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn clenshaw_equals_t_sum(c in coeffs_strategy(9), t in -1.0f64..1.0) {
        let direct: f64 = c.iter().enumerate().map(|(j, &cj)| cj * chebyshev_t(j, t)).sum();
        let clenshaw = eval_clenshaw(&c, t);
        prop_assert!((direct - clenshaw).abs() <= 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn bivariate_eval_matches_naive(deg in 0usize..4, u in -3.0f64..3.0, v in -3.0f64..3.0, seed in 0u64..1000) {
        let n = monomial_count(deg);
        // Deterministic pseudo-random coefficients from the seed.
        let coeffs: Vec<f64> = (0..n)
            .map(|i| {
                let h = (seed + i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                ((h >> 32) as f64 / u32::MAX as f64) * 4.0 - 2.0
            })
            .collect();
        let p = BivariatePoly::unnormalized(deg, coeffs.clone());
        let naive: f64 = monomials(deg)
            .zip(&coeffs)
            .map(|((i, j), &c)| c * u.powi(i as i32) * v.powi(j as i32))
            .sum();
        prop_assert!((p.eval(u, v) - naive).abs() <= 1e-9 * naive.abs().max(1.0));
    }
}
