//! S-tree: a B+-tree over a uniform sample (paper Table IV).
//!
//! The heuristic comparator of Fig. 20: draw a uniform sample of the keys,
//! bulk-load the STX-style B+-tree substrate over it, and answer range
//! COUNT by scaling the sample count by the inverse sampling rate. Faster
//! and smaller than an exact tree, but without any error guarantee.

use polyfit_exact::dataset::Record;
use polyfit_exact::BPlusTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampled B+-tree COUNT estimator.
#[derive(Clone, Debug)]
pub struct STree {
    tree: BPlusTree,
    /// Inverse sampling rate (scale factor applied to sample counts).
    scale: f64,
    sample_size: usize,
}

impl STree {
    /// Build over sorted keys with sampling rate `rate ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics on empty keys or a rate outside `(0, 1]`.
    pub fn new(keys_sorted: &[f64], rate: f64, seed: u64) -> Self {
        assert!(!keys_sorted.is_empty(), "empty input");
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        let n = keys_sorted.len();
        let m = ((n as f64 * rate).round() as usize).clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        // Uniform sample without replacement via partial Fisher–Yates over
        // indices, then re-sorted (B+-tree bulk load needs sorted input).
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = rng.gen_range(i..n);
            indices.swap(i, j);
        }
        let mut sample: Vec<f64> = indices[..m].iter().map(|&i| keys_sorted[i]).collect();
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite keys"));
        let scale = n as f64 / m as f64;
        let records: Vec<Record> = sample.into_iter().map(|k| Record::new(k, 1.0)).collect();
        STree { tree: BPlusTree::new(&records), scale, sample_size: m }
    }

    /// Estimated COUNT over `(lq, uq]`: sample count × inverse rate.
    #[inline]
    pub fn query(&self, lq: f64, uq: f64) -> f64 {
        self.tree.range_sum(lq, uq) * self.scale
    }

    /// Number of sampled keys.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Size of the sampled tree in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }
}

impl polyfit::AggregateIndex for STree {
    fn name(&self) -> &'static str {
        "S-tree"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Count
    }

    fn query(&self, lq: f64, uq: f64) -> Option<polyfit::RangeAggregate> {
        // Sampling scale-up carries no deterministic bound.
        match polyfit::classify_bounds(lq, uq) {
            polyfit::QueryBounds::NonFinite => None,
            polyfit::QueryBounds::Reversed => Some(polyfit::RangeAggregate::heuristic(0.0)),
            polyfit::QueryBounds::Proper => {
                Some(polyfit::RangeAggregate::heuristic(STree::query(self, lq, uq)))
            }
        }
    }

    fn size_bytes(&self) -> usize {
        STree::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn full_rate_is_exact() {
        let ks = keys(1000);
        let t = STree::new(&ks, 1.0, 7);
        assert_eq!(t.sample_size(), 1000);
        assert_eq!(t.query(99.0, 499.0), 400.0);
    }

    #[test]
    fn estimates_are_unbiasedish() {
        let ks = keys(100_000);
        let t = STree::new(&ks, 0.01, 3);
        let est = t.query(10_000.0, 60_000.0);
        let exact = 50_000.0;
        // 1000 samples, p = 0.5 → σ ≈ 0.016·n ≈ 1600; allow 4σ.
        assert!((est - exact).abs() < 6500.0, "est {est}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ks = keys(10_000);
        let a = STree::new(&ks, 0.05, 11);
        let b = STree::new(&ks, 0.05, 11);
        assert_eq!(a.query(100.0, 5000.0), b.query(100.0, 5000.0));
    }

    #[test]
    fn smaller_rate_smaller_tree() {
        let ks = keys(50_000);
        let small = STree::new(&ks, 0.001, 1);
        let large = STree::new(&ks, 0.1, 1);
        assert!(small.size_bytes() < large.size_bytes());
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_panics() {
        STree::new(&keys(10), 0.0, 0);
    }

    #[test]
    fn tiny_dataset() {
        let t = STree::new(&[5.0], 0.5, 0);
        assert_eq!(t.sample_size(), 1);
        assert_eq!(t.query(0.0, 10.0), 1.0);
    }
}
