//! FITing-tree \[20\]: greedy shrinking-cone linear segmentation.
//!
//! The closest prior work to PolyFit: the cumulative function is covered by
//! line segments, each guaranteeing `|CF(k_i) − L(k_i)| ≤ δ` at every key
//! it spans, built in one pass with the shrinking-cone test. PolyFit's
//! claim (Fig. 5, Fig. 15) is that degree-≥2 polynomials need fewer
//! segments for the same δ; this implementation lets the harness verify
//! exactly that.
//!
//! Extended to range aggregates per the paper's Appendix A: the same
//! query machinery as PolyFit (`A = L_Iu(uq) − L_Il(lq)`, Lemmas 2–3).

/// One linear segment: `L(k) = base + slope·(k − lo_key)` on
/// `[lo_key, hi_key]`.
#[derive(Clone, Copy, Debug)]
struct LineSegment {
    lo_key: f64,
    hi_key: f64,
    base: f64,
    slope: f64,
}

impl LineSegment {
    #[inline]
    fn eval_clamped(&self, k: f64) -> f64 {
        let k = k.clamp(self.lo_key, self.hi_key);
        self.base + self.slope * (k - self.lo_key)
    }
}

/// A FITing-tree over the cumulative function.
#[derive(Clone, Debug)]
pub struct FitingTree {
    directory: Vec<f64>,
    segments: Vec<LineSegment>,
    delta: f64,
    total: f64,
    domain: (f64, f64),
}

impl FitingTree {
    /// Build from the materialised cumulative function: strictly increasing
    /// `keys` with their inclusive cumulative `values`.
    ///
    /// # Panics
    /// Panics if inputs are empty, mismatched, or keys not strictly
    /// increasing; or δ not positive.
    pub fn new(keys: &[f64], values: &[f64], delta: f64) -> Self {
        assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
        assert!(!keys.is_empty(), "empty input");
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must increase");
        let n = keys.len();
        let mut segments = Vec::new();
        let mut start = 0usize;
        while start < n {
            let (k0, y0) = (keys[start], values[start]);
            let mut slope_lo = f64::NEG_INFINITY;
            let mut slope_hi = f64::INFINITY;
            let mut end = start;
            for i in start + 1..n {
                let dx = keys[i] - k0;
                let lo = (values[i] - delta - y0) / dx;
                let hi = (values[i] + delta - y0) / dx;
                let new_lo = slope_lo.max(lo);
                let new_hi = slope_hi.min(hi);
                if new_lo > new_hi {
                    break;
                }
                slope_lo = new_lo;
                slope_hi = new_hi;
                end = i;
            }
            // A single-point segment has no cone; otherwise the first
            // admitted point made both bounds finite.
            let slope = if end == start { 0.0 } else { 0.5 * (slope_lo + slope_hi) };
            segments.push(LineSegment { lo_key: k0, hi_key: keys[end], base: y0, slope });
            start = end + 1;
        }
        FitingTree {
            directory: segments.iter().map(|s| s.lo_key).collect(),
            segments,
            delta,
            total: values[n - 1],
            domain: (keys[0], keys[n - 1]),
        }
    }

    /// Build a COUNT-flavoured tree over sorted keys.
    pub fn counting(keys_sorted: &[f64], delta: f64) -> Self {
        let values: Vec<f64> = (1..=keys_sorted.len()).map(|i| i as f64).collect();
        FitingTree::new(keys_sorted, &values, delta)
    }

    /// Approximate `CF(k)`, within δ at dataset keys.
    #[inline]
    pub fn cf(&self, k: f64) -> f64 {
        if k < self.domain.0 {
            return 0.0;
        }
        if k >= self.domain.1 {
            return self.total;
        }
        let i = self.directory.partition_point(|&lo| lo <= k) - 1;
        self.segments[i].eval_clamped(k)
    }

    /// Approximate range SUM over `(lq, uq]` — within `2δ` at key
    /// endpoints.
    #[inline]
    pub fn query(&self, lq: f64, uq: f64) -> f64 {
        if lq >= uq {
            return 0.0;
        }
        self.cf(uq) - self.cf(lq)
    }

    /// Relative-guarantee certificate (Lemma 3): the approximate answer is
    /// certified iff `A ≥ 2δ(1 + 1/ε_rel)`.
    pub fn rel_certified(&self, answer: f64, eps_rel: f64) -> bool {
        answer >= 2.0 * self.delta * (1.0 + 1.0 / eps_rel)
    }

    /// The per-endpoint error bound δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of line segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Logical serialized size: per segment (lo, hi, base, slope).
    pub fn size_bytes(&self) -> usize {
        self.segments.len() * 4 * std::mem::size_of::<f64>() + 3 * std::mem::size_of::<f64>()
    }
}

impl polyfit::AggregateIndex for FitingTree {
    fn name(&self) -> &'static str {
        "FITing-tree"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Sum
    }

    fn query(&self, lq: f64, uq: f64) -> Option<polyfit::RangeAggregate> {
        // Same Lemma 2 machinery as PolyFit: two δ-bounded endpoints.
        match polyfit::classify_bounds(lq, uq) {
            polyfit::QueryBounds::NonFinite => None,
            polyfit::QueryBounds::Reversed => {
                Some(polyfit::RangeAggregate::absolute(0.0, 2.0 * self.delta))
            }
            polyfit::QueryBounds::Proper => Some(polyfit::RangeAggregate::absolute(
                FitingTree::query(self, lq, uq),
                2.0 * self.delta,
            )),
        }
    }

    fn size_bytes(&self) -> usize {
        FitingTree::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase(n: usize) -> (Vec<f64>, Vec<f64>) {
        let keys: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let mut values = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 + ((i * 13) % 7) as f64;
            values.push(acc);
        }
        (keys, values)
    }

    #[test]
    fn cf_within_delta_at_keys() {
        let (keys, values) = staircase(5000);
        let t = FitingTree::new(&keys, &values, 20.0);
        for (k, v) in keys.iter().zip(&values) {
            let err = (t.cf(*k) - v).abs();
            assert!(err <= 20.0 + 1e-9, "key {k}: err {err}");
        }
    }

    #[test]
    fn query_within_two_delta() {
        let (keys, values) = staircase(3000);
        let t = FitingTree::new(&keys, &values, 15.0);
        for (a, b) in [(0usize, 2999usize), (10, 1500), (2000, 2001)] {
            let exact = values[b] - values[a];
            let err = (t.query(keys[a], keys[b]) - exact).abs();
            assert!(err <= 30.0 + 1e-9, "err {err}");
        }
    }

    #[test]
    fn linear_data_single_segment() {
        let keys: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let values: Vec<f64> = keys.iter().map(|&k| 3.0 * k + 7.0).collect();
        let t = FitingTree::new(&keys, &values, 0.5);
        assert_eq!(t.num_segments(), 1);
    }

    #[test]
    fn tighter_delta_more_segments() {
        let (keys, values) = staircase(5000);
        let loose = FitingTree::new(&keys, &values, 100.0);
        let tight = FitingTree::new(&keys, &values, 2.0);
        assert!(tight.num_segments() > loose.num_segments());
    }

    #[test]
    fn domain_edges_exact() {
        let (keys, values) = staircase(100);
        let t = FitingTree::new(&keys, &values, 5.0);
        assert_eq!(t.cf(keys[0] - 1.0), 0.0);
        assert_eq!(t.cf(*keys.last().unwrap() + 1.0), *values.last().unwrap());
    }

    #[test]
    fn counting_flavour() {
        let keys: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let t = FitingTree::counting(&keys, 5.0);
        let approx = t.query(99.0, 899.0);
        assert!((approx - 800.0).abs() <= 10.0, "approx {approx}");
    }

    #[test]
    fn rel_certificate_threshold() {
        let (keys, values) = staircase(100);
        let t = FitingTree::new(&keys, &values, 10.0);
        assert!(t.rel_certified(3000.0, 0.01)); // ≥ 20·101 = 2020
        assert!(!t.rel_certified(1000.0, 0.01));
    }

    #[test]
    fn single_point() {
        let t = FitingTree::new(&[5.0], &[42.0], 1.0);
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.cf(5.0), 42.0);
        assert_eq!(t.cf(4.0), 0.0);
    }

    #[test]
    fn size_scales_with_segments() {
        let (keys, values) = staircase(2000);
        let t = FitingTree::new(&keys, &values, 5.0);
        assert_eq!(t.size_bytes(), t.num_segments() * 32 + 24);
    }
}
