//! Histogram heuristics (the paper's "Hist" comparator \[52\]).
//!
//! The entropy-based histogram of To et al. selects bucket boundaries so
//! that each bucket carries (near-)equal probability mass, which maximises
//! the entropy of the bucket distribution — i.e. an *equi-depth* histogram
//! over the key attribute. Within a bucket, mass is assumed uniform, so
//! `CF(k)` is linearly interpolated. No error guarantee (Table IV: no for
//! both abs and rel) — this is the Fig. 20 heuristic whose bin count
//! trades speed against measured error.

/// Equi-depth (maximum-entropy) histogram over sorted keys with measures.
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram {
    /// Bucket upper-boundary keys, ascending (`boundaries[i]` closes
    /// bucket `i`).
    boundaries: Vec<f64>,
    /// Inclusive cumulative measure at each bucket's close.
    cum: Vec<f64>,
    /// Key where the first bucket opens.
    first_key: f64,
    total: f64,
}

impl EquiDepthHistogram {
    /// Build with `buckets` equal-mass buckets from the cumulative function
    /// (strictly increasing keys, inclusive cumulative values).
    ///
    /// # Panics
    /// Panics on empty input or zero buckets.
    pub fn new(keys: &[f64], values: &[f64], buckets: usize) -> Self {
        assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
        assert!(!keys.is_empty(), "empty input");
        assert!(buckets >= 1, "need at least one bucket");
        let n = keys.len();
        let total = values[n - 1];
        let buckets = buckets.min(n);
        let mut boundaries = Vec::with_capacity(buckets);
        let mut cum = Vec::with_capacity(buckets);
        // Equal-mass boundaries: close bucket b at the first key whose
        // cumulative mass reaches (b+1)/buckets of the total.
        let mut idx = 0usize;
        for b in 0..buckets {
            let target = total * (b + 1) as f64 / buckets as f64;
            while idx + 1 < n && values[idx] < target {
                idx += 1;
            }
            boundaries.push(keys[idx]);
            cum.push(values[idx]);
            if idx + 1 < n {
                idx += 1;
            }
        }
        // Ensure the final bucket closes at the last key.
        *boundaries.last_mut().expect("non-empty") = keys[n - 1];
        *cum.last_mut().expect("non-empty") = total;
        EquiDepthHistogram { boundaries, cum, first_key: keys[0], total }
    }

    /// Estimated `CF(k)` by uniform interpolation within the bucket.
    pub fn cf(&self, k: f64) -> f64 {
        if k < self.first_key {
            return 0.0;
        }
        let i = self.boundaries.partition_point(|&b| b < k);
        if i >= self.boundaries.len() {
            return self.total;
        }
        let (lo_key, lo_cum) =
            if i == 0 { (self.first_key, 0.0) } else { (self.boundaries[i - 1], self.cum[i - 1]) };
        let (hi_key, hi_cum) = (self.boundaries[i], self.cum[i]);
        if hi_key <= lo_key {
            return hi_cum;
        }
        let frac = ((k - lo_key) / (hi_key - lo_key)).clamp(0.0, 1.0);
        lo_cum + frac * (hi_cum - lo_cum)
    }

    /// Estimated range SUM over `(lq, uq]`.
    #[inline]
    pub fn query(&self, lq: f64, uq: f64) -> f64 {
        if lq >= uq {
            return 0.0;
        }
        self.cf(uq) - self.cf(lq)
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len()
    }

    /// Logical size: boundary + cumulative per bucket.
    pub fn size_bytes(&self) -> usize {
        self.boundaries.len() * 2 * std::mem::size_of::<f64>()
    }
}

impl polyfit::AggregateIndex for EquiDepthHistogram {
    fn name(&self) -> &'static str {
        "hist"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Sum
    }

    fn query(&self, lq: f64, uq: f64) -> Option<polyfit::RangeAggregate> {
        // Intra-bucket interpolation carries no deterministic bound.
        match polyfit::classify_bounds(lq, uq) {
            polyfit::QueryBounds::NonFinite => None,
            polyfit::QueryBounds::Reversed => Some(polyfit::RangeAggregate::heuristic(0.0)),
            polyfit::QueryBounds::Proper => {
                Some(polyfit::RangeAggregate::heuristic(EquiDepthHistogram::query(self, lq, uq)))
            }
        }
    }

    fn size_bytes(&self) -> usize {
        EquiDepthHistogram::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> (Vec<f64>, Vec<f64>) {
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        (keys, values)
    }

    #[test]
    fn uniform_data_is_exactly_interpolated() {
        let (keys, values) = uniform(1000);
        let h = EquiDepthHistogram::new(&keys, &values, 10);
        // On uniform data equi-depth interpolation is near-exact.
        for &k in &[0.0, 100.0, 555.0, 999.0] {
            let exact = k + 1.0;
            assert!((h.cf(k) - exact).abs() <= 2.0, "cf({k}) = {}", h.cf(k));
        }
    }

    #[test]
    fn bucket_count_respected() {
        let (keys, values) = uniform(1000);
        assert_eq!(EquiDepthHistogram::new(&keys, &values, 50).num_buckets(), 50);
        // More buckets than keys collapses to n.
        assert_eq!(EquiDepthHistogram::new(&keys[..5], &values[..5], 50).num_buckets(), 5);
    }

    #[test]
    fn skewed_data_bounded_by_bucket_mass() {
        // Heavy cluster at keys 500–510.
        let mut keys = Vec::new();
        for i in 0..500 {
            keys.push(i as f64);
        }
        for i in 0..5000 {
            keys.push(500.0 + i as f64 / 500.0);
        }
        for i in 0..500 {
            keys.push(600.0 + i as f64);
        }
        let values: Vec<f64> = (1..=keys.len()).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::new(&keys, &values, 100);
        // Per-bucket mass = 60: interpolation error within a bucket is
        // bounded by its mass.
        let total = keys.len() as f64;
        for &k in &[100.0, 505.0, 700.0] {
            let exact = keys.iter().filter(|&&x| x <= k).count() as f64;
            assert!((h.cf(k) - exact).abs() <= total / 100.0 + 1.0, "cf({k})");
        }
    }

    #[test]
    fn edges() {
        let (keys, values) = uniform(100);
        let h = EquiDepthHistogram::new(&keys, &values, 8);
        assert_eq!(h.cf(-5.0), 0.0);
        assert_eq!(h.cf(1e9), 100.0);
        assert_eq!(h.query(50.0, 10.0), 0.0);
    }

    #[test]
    fn single_bucket() {
        let (keys, values) = uniform(100);
        let h = EquiDepthHistogram::new(&keys, &values, 1);
        assert_eq!(h.num_buckets(), 1);
        assert!((h.cf(49.5) - 50.0).abs() <= 1.5);
    }

    #[test]
    fn size_accounting() {
        let (keys, values) = uniform(100);
        let h = EquiDepthHistogram::new(&keys, &values, 25);
        assert_eq!(h.size_bytes(), 25 * 16);
    }
}
