//! Recursive Model Index (RMI) \[33\], extended to range aggregates.
//!
//! A multi-stage hierarchy of linear models: stage `s` models route a key
//! to one of the `n_{s+1}` models of the next stage, and the final stage
//! predicts the cumulative function value. Following the paper's tuning
//! (Appendix B), all models are linear regressions and the structure
//! defaults to `1 → 10 → 100 → 1000`.
//!
//! ## Error guarantee (Appendix A)
//!
//! RMI alone offers no bound, so each leaf records its maximum training
//! error and the index range of keys it served. At query time a leaf whose
//! recorded error exceeds the target δ answers by *last-mile* binary
//! search over the retained key/cumulative arrays — exact, at `O(log ℓ)`
//! cost — so `|CF̃(k) − CF(k)| ≤ δ` holds at every dataset key and the
//! Lemma 2/3 machinery applies unchanged. Index size counts models only
//! (the data arrays are the dataset itself, which every method retains).

/// A linear model `y = a + b·k`.
#[derive(Clone, Copy, Debug, Default)]
struct Linear {
    a: f64,
    b: f64,
}

impl Linear {
    #[inline]
    fn predict(&self, k: f64) -> f64 {
        self.a + self.b * k
    }

    /// Ordinary least squares over `(keys[i], ys[i])`.
    fn fit(keys: &[f64], ys: &[f64]) -> Linear {
        let n = keys.len() as f64;
        if keys.is_empty() {
            return Linear::default();
        }
        if keys.len() == 1 {
            return Linear { a: ys[0], b: 0.0 };
        }
        let mean_k = keys.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (&k, &y) in keys.iter().zip(ys) {
            cov += (k - mean_k) * (y - mean_y);
            var += (k - mean_k) * (k - mean_k);
        }
        let b = if var > 0.0 { cov / var } else { 0.0 };
        Linear { a: mean_y - b * mean_k, b }
    }
}

#[derive(Clone, Copy, Debug)]
struct LeafMeta {
    model: Linear,
    /// Max |CF − prediction| over keys routed to this leaf at build time.
    max_err: f64,
    /// Key index range `[lo, hi)` routed here (for last-mile search).
    lo: u32,
    hi: u32,
}

/// A multi-stage RMI over the cumulative function.
#[derive(Clone, Debug)]
pub struct Rmi {
    /// Router stages (all but the last stage). `stages[s][m]` predicts a
    /// fractional position scaled to the next stage's model count.
    routers: Vec<Vec<Linear>>,
    leaves: Vec<LeafMeta>,
    /// Retained data for last-mile correction.
    keys: Vec<f64>,
    cum: Vec<f64>,
    /// δ used to decide between model answer and last-mile search.
    delta: f64,
    total: f64,
    domain: (f64, f64),
}

impl Rmi {
    /// Build from the materialised cumulative function with the given stage
    /// widths (e.g. `&[1, 10, 100, 1000]`; the first entry must be 1) and
    /// the per-endpoint error budget δ.
    ///
    /// # Panics
    /// Panics on empty input, non-increasing keys, or an invalid `stages`
    /// shape.
    pub fn new(keys: Vec<f64>, values: Vec<f64>, stages: &[usize], delta: f64) -> Self {
        assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
        assert!(!keys.is_empty(), "empty input");
        assert!(stages.len() >= 2 && stages[0] == 1, "stages must start with 1 root model");
        assert!(stages.iter().all(|&s| s >= 1), "stage widths must be ≥ 1");
        assert!(delta > 0.0, "delta must be positive");
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must increase");
        let n = keys.len();
        // Assignment of points to models, stage by stage.
        let mut assignment: Vec<usize> = vec![0; n];
        let mut routers: Vec<Vec<Linear>> = Vec::with_capacity(stages.len() - 1);
        for s in 0..stages.len() - 1 {
            let width = stages[s];
            let next_width = stages[s + 1];
            // Train each model of this stage to map key → target index in
            // the next stage (proportional position within the dataset).
            let mut models = vec![Linear::default(); width];
            let mut bucket_keys: Vec<Vec<f64>> = vec![Vec::new(); width];
            let mut bucket_targets: Vec<Vec<f64>> = vec![Vec::new(); width];
            for i in 0..n {
                let target = (i as f64 / n as f64) * next_width as f64;
                bucket_keys[assignment[i]].push(keys[i]);
                bucket_targets[assignment[i]].push(target);
            }
            for m in 0..width {
                models[m] = Linear::fit(&bucket_keys[m], &bucket_targets[m]);
            }
            // Route points to the next stage.
            for i in 0..n {
                let pred = models[assignment[i]].predict(keys[i]);
                assignment[i] = (pred.max(0.0) as usize).min(next_width - 1);
            }
            routers.push(models);
        }
        // Leaf stage: predict CF values.
        let leaf_count = *stages.last().expect("non-empty stages");
        let mut leaf_keys: Vec<Vec<f64>> = vec![Vec::new(); leaf_count];
        let mut leaf_vals: Vec<Vec<f64>> = vec![Vec::new(); leaf_count];
        let mut leaf_lo = vec![u32::MAX; leaf_count];
        let mut leaf_hi = vec![0u32; leaf_count];
        for i in 0..n {
            let m = assignment[i];
            leaf_keys[m].push(keys[i]);
            leaf_vals[m].push(values[i]);
            leaf_lo[m] = leaf_lo[m].min(i as u32);
            leaf_hi[m] = leaf_hi[m].max(i as u32 + 1);
        }
        let leaves: Vec<LeafMeta> = (0..leaf_count)
            .map(|m| {
                let model = Linear::fit(&leaf_keys[m], &leaf_vals[m]);
                let max_err = leaf_keys[m]
                    .iter()
                    .zip(&leaf_vals[m])
                    .map(|(&k, &v)| (v - model.predict(k)).abs())
                    .fold(0.0f64, f64::max);
                let (lo, hi) =
                    if leaf_lo[m] == u32::MAX { (0, 0) } else { (leaf_lo[m], leaf_hi[m]) };
                LeafMeta { model, max_err, lo, hi }
            })
            .collect();
        let total = values[n - 1];
        let domain = (keys[0], keys[n - 1]);
        Rmi { routers, leaves, keys, cum: values, delta, total, domain }
    }

    /// Build a COUNT-flavoured RMI over sorted keys with the paper's
    /// default `1 → 10 → 100 → 1000` structure.
    pub fn counting_default(keys_sorted: Vec<f64>, delta: f64) -> Self {
        let values: Vec<f64> = (1..=keys_sorted.len()).map(|i| i as f64).collect();
        Rmi::new(keys_sorted, values, &[1, 10, 100, 1000], delta)
    }

    #[inline]
    fn route(&self, k: f64) -> usize {
        let mut m = 0usize;
        for (s, stage) in self.routers.iter().enumerate() {
            let next_width = if s + 1 < self.routers.len() {
                self.routers[s + 1].len()
            } else {
                self.leaves.len()
            };
            let pred = stage[m].predict(k);
            m = (pred.max(0.0) as usize).min(next_width - 1);
        }
        m
    }

    /// Approximate `CF(k)`, within δ at dataset keys (model answer when the
    /// leaf is certified, exact last-mile search otherwise).
    pub fn cf(&self, k: f64) -> f64 {
        if k < self.domain.0 {
            return 0.0;
        }
        if k >= self.domain.1 {
            return self.total;
        }
        let leaf = &self.leaves[self.route(k)];
        if leaf.max_err <= self.delta && leaf.hi > leaf.lo {
            let lo_key = self.keys[leaf.lo as usize];
            let hi_key = self.keys[(leaf.hi as usize - 1).max(leaf.lo as usize)];
            return leaf.model.predict(k.clamp(lo_key, hi_key)).clamp(0.0, self.total);
        }
        // Last-mile: exact rank within the leaf range (expand to the whole
        // array when routing sent us to an empty/uncertain leaf).
        let (lo, hi) = if leaf.hi > leaf.lo {
            (leaf.lo as usize, leaf.hi as usize)
        } else {
            (0, self.keys.len())
        };
        // Routing mispredictions can land keys just outside the leaf range;
        // widen until the range brackets k.
        let mut lo = lo;
        let mut hi = hi;
        while lo > 0 && self.keys[lo] > k {
            lo = lo.saturating_sub(64);
        }
        while hi < self.keys.len() && self.keys[hi - 1] <= k {
            hi = (hi + 64).min(self.keys.len());
        }
        let idx = lo + self.keys[lo..hi].partition_point(|&key| key <= k);
        if idx == 0 {
            0.0
        } else {
            self.cum[idx - 1]
        }
    }

    /// Approximate range SUM over `(lq, uq]` — within `2δ` at key
    /// endpoints.
    #[inline]
    pub fn query(&self, lq: f64, uq: f64) -> f64 {
        if lq >= uq {
            return 0.0;
        }
        self.cf(uq) - self.cf(lq)
    }

    /// Relative-guarantee certificate (Lemma 3 analogue).
    pub fn rel_certified(&self, answer: f64, eps_rel: f64) -> bool {
        answer >= 2.0 * self.delta * (1.0 + 1.0 / eps_rel)
    }

    /// The per-endpoint error budget δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Fraction of leaves that satisfy the δ budget with their model alone.
    pub fn certified_leaf_fraction(&self) -> f64 {
        let certified = self.leaves.iter().filter(|l| l.max_err <= self.delta).count();
        certified as f64 / self.leaves.len() as f64
    }

    /// Logical model size in bytes: 2 floats per model + leaf metadata.
    pub fn size_bytes(&self) -> usize {
        let router_models: usize = self.routers.iter().map(Vec::len).sum();
        router_models * 16 + self.leaves.len() * (16 + 8 + 8)
    }

    /// Total number of models across all stages.
    pub fn num_models(&self) -> usize {
        self.routers.iter().map(Vec::len).sum::<usize>() + self.leaves.len()
    }
}

impl polyfit::AggregateIndex for Rmi {
    fn name(&self) -> &'static str {
        "RMI"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Sum
    }

    fn query(&self, lq: f64, uq: f64) -> Option<polyfit::RangeAggregate> {
        // Certified leaves answer by model, the rest by exact last-mile
        // search — either way each endpoint is within δ (Appendix A).
        match polyfit::classify_bounds(lq, uq) {
            polyfit::QueryBounds::NonFinite => None,
            polyfit::QueryBounds::Reversed => {
                Some(polyfit::RangeAggregate::absolute(0.0, 2.0 * self.delta))
            }
            polyfit::QueryBounds::Proper => {
                Some(polyfit::RangeAggregate::absolute(Rmi::query(self, lq, uq), 2.0 * self.delta))
            }
        }
    }

    fn size_bytes(&self) -> usize {
        Rmi::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cumulative(n: usize) -> (Vec<f64>, Vec<f64>) {
        let keys: Vec<f64> = (0..n).map(|i| (i as f64).powf(1.1)).collect();
        let mut values = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 + ((i * 17) % 5) as f64;
            values.push(acc);
        }
        (keys, values)
    }

    #[test]
    fn cf_within_delta_at_every_key() {
        let (keys, values) = cumulative(20_000);
        let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 10, 100], 50.0);
        for (i, (&k, &v)) in keys.iter().zip(&values).enumerate() {
            let err = (rmi.cf(k) - v).abs();
            assert!(err <= 50.0 + 1e-9, "key[{i}]={k}: err {err}");
        }
    }

    #[test]
    fn query_within_two_delta() {
        let (keys, values) = cumulative(10_000);
        let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 10, 100, 1000], 25.0);
        for (a, b) in [(0usize, 9999usize), (100, 5000), (7000, 7001)] {
            let exact = values[b] - values[a];
            let err = (rmi.query(keys[a], keys[b]) - exact).abs();
            assert!(err <= 50.0 + 1e-9, "err {err}");
        }
    }

    #[test]
    fn tiny_delta_forces_last_mile_but_stays_exact() {
        let (keys, values) = cumulative(5000);
        let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 10], 1e-9);
        // δ≈0: every leaf falls back to exact search.
        for i in (0..5000).step_by(97) {
            assert_eq!(rmi.cf(keys[i]), values[i], "i={i}");
        }
    }

    #[test]
    fn domain_edges() {
        let (keys, values) = cumulative(100);
        let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 4], 10.0);
        assert_eq!(rmi.cf(keys[0] - 1.0), 0.0);
        assert_eq!(rmi.cf(keys[99] + 5.0), values[99]);
    }

    #[test]
    fn counting_default_structure() {
        let keys: Vec<f64> = (0..5000).map(|i| i as f64 * 0.3).collect();
        let rmi = Rmi::counting_default(keys, 20.0);
        assert_eq!(rmi.num_models(), 1 + 10 + 100 + 1000);
        let approx = rmi.query(30.0, 1200.0);
        assert!((approx - (1200.0 - 30.0) / 0.3).abs() <= 40.0 + 1.0);
    }

    #[test]
    fn certified_fraction_increases_with_delta() {
        let (keys, values) = cumulative(10_000);
        let strict = Rmi::new(keys.clone(), values.clone(), &[1, 10, 100], 1.0);
        let loose = Rmi::new(keys, values, &[1, 10, 100], 500.0);
        assert!(loose.certified_leaf_fraction() >= strict.certified_leaf_fraction());
    }

    #[test]
    fn rel_certificate() {
        let (keys, values) = cumulative(1000);
        let rmi = Rmi::new(keys, values, &[1, 10], 10.0);
        assert!(rmi.rel_certified(5000.0, 0.01));
        assert!(!rmi.rel_certified(100.0, 0.01));
    }

    #[test]
    #[should_panic(expected = "stages must start with 1")]
    fn invalid_stages_panics() {
        Rmi::new(vec![1.0, 2.0], vec![1.0, 2.0], &[2, 10], 1.0);
    }

    #[test]
    fn single_point() {
        let rmi = Rmi::new(vec![5.0], vec![3.0], &[1, 2], 1.0);
        assert_eq!(rmi.cf(5.0), 3.0);
        assert_eq!(rmi.cf(4.0), 0.0);
        assert_eq!(rmi.cf(6.0), 3.0);
    }
}
