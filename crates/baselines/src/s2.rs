//! S2 sequential sampling (Haas & Swami \[26\]).
//!
//! The probabilistic-guarantee comparator of Table V: at query time, sample
//! records uniformly with replacement, maintain the hit fraction `p̂` of
//! the query range, and stop as soon as the CLT confidence interval is
//! tight enough for the requested guarantee at the requested confidence
//! (default 0.9, as in the paper). The answer `p̂·n` then satisfies the
//! absolute or relative bound *with probability ≈ confidence* — unlike
//! PolyFit's deterministic bounds. Response time is orders of magnitude
//! above the index methods (the paper measures 10⁷–10⁹ ns), because every
//! query runs thousands to millions of random probes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a sequential-sampling estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct S2Estimate {
    /// Estimated aggregate (count) over the range.
    pub value: f64,
    /// Number of samples drawn before the stopping rule fired.
    pub samples: usize,
}

/// Sequential sampler over an (unsorted) key array.
#[derive(Clone, Debug)]
pub struct S2Sampler {
    keys: Vec<f64>,
    /// Normal quantile for the configured confidence (1.645 at 0.9).
    z: f64,
    /// Minimum samples before the CLT stopping rule may fire.
    min_samples: usize,
    /// Hard cap on samples per query (a full pass is never exceeded
    /// by more than this factor).
    max_samples: usize,
}

impl S2Sampler {
    /// Build over raw keys with the paper's default confidence 0.9.
    pub fn new(keys: Vec<f64>) -> Self {
        Self::with_confidence(keys, 0.9)
    }

    /// Build with an explicit confidence ∈ {0.8, 0.9, 0.95, 0.99}.
    pub fn with_confidence(keys: Vec<f64>, confidence: f64) -> Self {
        assert!(!keys.is_empty(), "empty input");
        let z = match confidence {
            c if (c - 0.8).abs() < 1e-9 => 1.282,
            c if (c - 0.9).abs() < 1e-9 => 1.645,
            c if (c - 0.95).abs() < 1e-9 => 1.960,
            c if (c - 0.99).abs() < 1e-9 => 2.576,
            other => panic!("unsupported confidence {other}; use 0.8/0.9/0.95/0.99"),
        };
        let n = keys.len();
        S2Sampler { keys, z, min_samples: 100, max_samples: (4 * n).max(10_000) }
    }

    /// Estimate the COUNT over `(lq, uq]` with an absolute-error target:
    /// stop when `z·n·σ̂_p ≤ ε_abs`.
    pub fn query_abs(&self, lq: f64, uq: f64, eps_abs: f64, seed: u64) -> S2Estimate {
        assert!(eps_abs > 0.0, "eps_abs must be positive");
        let n = self.keys.len() as f64;
        self.run(lq, uq, seed, |p_hat, k, z| {
            let half = z * (p_hat * (1.0 - p_hat) / k).sqrt() * n;
            half <= eps_abs
        })
    }

    /// Estimate the COUNT over `(lq, uq]` with a relative-error target:
    /// stop when `z·σ̂_p ≤ ε_rel·p̂` (requires some hits first).
    pub fn query_rel(&self, lq: f64, uq: f64, eps_rel: f64, seed: u64) -> S2Estimate {
        assert!(eps_rel > 0.0, "eps_rel must be positive");
        self.run(lq, uq, seed, |p_hat, k, z| {
            if p_hat <= 0.0 {
                return false;
            }
            let half = z * (p_hat * (1.0 - p_hat) / k).sqrt();
            half <= eps_rel * p_hat
        })
    }

    fn run(&self, lq: f64, uq: f64, seed: u64, stop: impl Fn(f64, f64, f64) -> bool) -> S2Estimate {
        let n = self.keys.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        let mut k = 0usize;
        loop {
            let key = self.keys[rng.gen_range(0..n)];
            k += 1;
            if key > lq && key <= uq {
                hits += 1;
            }
            if k >= self.min_samples {
                let p_hat = hits as f64 / k as f64;
                if stop(p_hat, k as f64, self.z) || k >= self.max_samples {
                    return S2Estimate { value: p_hat * n as f64, samples: k };
                }
            }
        }
    }
}

/// Two-key sequential sampler (paper Table V, COUNT with two keys).
#[derive(Clone, Debug)]
pub struct S2Sampler2d {
    points: Vec<(f64, f64)>,
    z: f64,
    min_samples: usize,
    max_samples: usize,
}

impl S2Sampler2d {
    /// Build over raw `(u, v)` points with confidence 0.9.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "empty input");
        let n = points.len();
        S2Sampler2d { points, z: 1.645, min_samples: 100, max_samples: (4 * n).max(10_000) }
    }

    /// Rectangle COUNT with an absolute-error stopping rule.
    pub fn query_abs(&self, rect: (f64, f64, f64, f64), eps_abs: f64, seed: u64) -> S2Estimate {
        assert!(eps_abs > 0.0, "eps_abs must be positive");
        let n = self.points.len() as f64;
        self.run(rect, seed, |p_hat, k, z| z * (p_hat * (1.0 - p_hat) / k).sqrt() * n <= eps_abs)
    }

    /// Rectangle COUNT with a relative-error stopping rule.
    pub fn query_rel(&self, rect: (f64, f64, f64, f64), eps_rel: f64, seed: u64) -> S2Estimate {
        assert!(eps_rel > 0.0, "eps_rel must be positive");
        self.run(rect, seed, |p_hat, k, z| {
            p_hat > 0.0 && z * (p_hat * (1.0 - p_hat) / k).sqrt() <= eps_rel * p_hat
        })
    }

    fn run(
        &self,
        rect: (f64, f64, f64, f64),
        seed: u64,
        stop: impl Fn(f64, f64, f64) -> bool,
    ) -> S2Estimate {
        let n = self.points.len();
        let (ul, uh, vl, vh) = rect;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        let mut k = 0usize;
        loop {
            let (u, v) = self.points[rng.gen_range(0..n)];
            k += 1;
            if u > ul && u <= uh && v > vl && v <= vh {
                hits += 1;
            }
            if k >= self.min_samples {
                let p_hat = hits as f64 / k as f64;
                if stop(p_hat, k as f64, self.z) || k >= self.max_samples {
                    return S2Estimate { value: p_hat * n as f64, samples: k };
                }
            }
        }
    }
}

/// Error target pinned into an [`S2Dispatch`] wrapper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum S2Mode {
    /// Stop when the CLT half-width meets an absolute target.
    Abs(f64),
    /// Stop when the CLT half-width meets a relative target.
    Rel(f64),
}

/// Adapter answering [`polyfit::AggregateIndex`] queries with sequential
/// sampling: the trait query carries no error target or seed, so both are
/// pinned at wrap time (the seed keeps runs reproducible). The sampler sits
/// behind `Rc` so several dispatch modes can share one copy of the data.
#[derive(Clone, Debug)]
pub struct S2Dispatch {
    sampler: std::rc::Rc<S2Sampler>,
    mode: S2Mode,
    seed: u64,
}

impl S2Dispatch {
    /// Wrap `sampler`, answering every trait query under `mode`.
    pub fn new(sampler: impl Into<std::rc::Rc<S2Sampler>>, mode: S2Mode, seed: u64) -> Self {
        S2Dispatch { sampler: sampler.into(), mode, seed }
    }
}

impl polyfit::AggregateIndex for S2Dispatch {
    fn name(&self) -> &'static str {
        "S2"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Count
    }

    fn query(&self, lq: f64, uq: f64) -> Option<polyfit::RangeAggregate> {
        match polyfit::classify_bounds(lq, uq) {
            polyfit::QueryBounds::NonFinite => return None,
            polyfit::QueryBounds::Reversed => return Some(polyfit::RangeAggregate::heuristic(0.0)),
            polyfit::QueryBounds::Proper => {}
        }
        let est = match self.mode {
            S2Mode::Abs(eps) => self.sampler.query_abs(lq, uq, eps, self.seed),
            S2Mode::Rel(eps) => self.sampler.query_rel(lq, uq, eps, self.seed),
        };
        // The CLT bound holds only with the configured confidence.
        Some(polyfit::RangeAggregate::heuristic(est.value))
    }

    fn size_bytes(&self) -> usize {
        // S2 keeps no index — it probes the raw key array.
        self.sampler.keys.len() * std::mem::size_of::<f64>()
    }
}

/// Two-key analogue of [`S2Dispatch`].
#[derive(Clone, Debug)]
pub struct S2Dispatch2d {
    sampler: std::rc::Rc<S2Sampler2d>,
    mode: S2Mode,
    seed: u64,
}

impl S2Dispatch2d {
    /// Wrap `sampler`, answering every trait query under `mode`.
    pub fn new(sampler: impl Into<std::rc::Rc<S2Sampler2d>>, mode: S2Mode, seed: u64) -> Self {
        S2Dispatch2d { sampler: sampler.into(), mode, seed }
    }
}

impl polyfit::AggregateIndex2d for S2Dispatch2d {
    fn name(&self) -> &'static str {
        "S2"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Count
    }

    fn query_rect(
        &self,
        u_lo: f64,
        u_hi: f64,
        v_lo: f64,
        v_hi: f64,
    ) -> Option<polyfit::RangeAggregate> {
        match polyfit::classify_rect_bounds(u_lo, u_hi, v_lo, v_hi) {
            polyfit::QueryBounds::NonFinite => return None,
            polyfit::QueryBounds::Reversed => return Some(polyfit::RangeAggregate::heuristic(0.0)),
            polyfit::QueryBounds::Proper => {}
        }
        let rect = (u_lo, u_hi, v_lo, v_hi);
        let est = match self.mode {
            S2Mode::Abs(eps) => self.sampler.query_abs(rect, eps, self.seed),
            S2Mode::Rel(eps) => self.sampler.query_rel(rect, eps, self.seed),
        };
        Some(polyfit::RangeAggregate::heuristic(est.value))
    }

    fn size_bytes(&self) -> usize {
        self.sampler.points.len() * 2 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn abs_estimate_close() {
        let s = S2Sampler::new(keys(100_000));
        let est = s.query_abs(10_000.0, 60_000.0, 1000.0, 7);
        // Probabilistic: allow 3× the target.
        assert!((est.value - 50_000.0).abs() < 3000.0, "est {}", est.value);
        assert!(est.samples >= 100);
    }

    #[test]
    fn rel_estimate_close() {
        let s = S2Sampler::new(keys(100_000));
        let est = s.query_rel(20_000.0, 80_000.0, 0.05, 3);
        let exact = 60_000.0;
        assert!((est.value - exact).abs() / exact < 0.15, "est {}", est.value);
    }

    #[test]
    fn tighter_eps_more_samples() {
        let s = S2Sampler::new(keys(100_000));
        let loose = s.query_rel(10_000.0, 90_000.0, 0.2, 5);
        let tight = s.query_rel(10_000.0, 90_000.0, 0.01, 5);
        assert!(tight.samples > loose.samples);
    }

    #[test]
    fn empty_range_hits_cap() {
        let s = S2Sampler::new(keys(1000));
        let est = s.query_rel(5000.0, 6000.0, 0.1, 1);
        assert_eq!(est.value, 0.0);
        assert!(est.samples >= 10_000, "must exhaust the cap on zero hits");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = S2Sampler::new(keys(10_000));
        assert_eq!(s.query_abs(100.0, 5000.0, 200.0, 9), s.query_abs(100.0, 5000.0, 200.0, 9));
    }

    #[test]
    #[should_panic(expected = "unsupported confidence")]
    fn bad_confidence_panics() {
        S2Sampler::with_confidence(keys(10), 0.5);
    }

    #[test]
    fn two_key_abs_estimate() {
        let pts: Vec<(f64, f64)> =
            (0..200u32).flat_map(|i| (0..200u32).map(move |j| (i as f64, j as f64))).collect();
        let s = S2Sampler2d::new(pts);
        // Quarter of the domain -> 10000 points.
        let est = s.query_abs((-1.0, 99.0, -1.0, 99.0), 500.0, 3);
        assert!((est.value - 10_000.0).abs() < 1500.0, "est {}", est.value);
    }

    #[test]
    fn two_key_rel_deterministic() {
        let pts: Vec<(f64, f64)> = (0..10_000u32).map(|i| (i as f64, i as f64)).collect();
        let s = S2Sampler2d::new(pts);
        let a = s.query_rel((0.0, 5000.0, 0.0, 5000.0), 0.1, 4);
        let b = s.query_rel((0.0, 5000.0, 0.0, 5000.0), 0.1, 4);
        assert_eq!(a, b);
    }
}
