//! A small fully-connected neural network (Appendix B-1 of the paper).
//!
//! The paper's Table VI compares linear regression against MLPs with one or
//! two hidden layers (architectures `1:X:1` and `1:X:Y:1`) as the RMI model
//! family, concluding that NN prediction cost (hundreds of ns) disqualifies
//! them despite better fit quality. This module reproduces that study:
//! a from-scratch ReLU MLP trained with mini-batch SGD on the normalized
//! `key → CF(key)` mapping, with a prediction path deliberately kept
//! allocation-free so the measured latency reflects arithmetic cost only.

// Index-based loops below walk several arrays in lockstep (tableau rows,
// activation/delta buffers); iterator zips would obscure the math.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dense layer: `out = W·in + b` (row-major weights).
#[derive(Clone, Debug)]
struct Layer {
    w: Vec<f64>,
    b: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He initialisation for ReLU nets.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale).collect();
        Layer { w, b: vec![0.0; outputs], inputs, outputs }
    }
}

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct MlpConfig {
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed (initialisation + shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig { learning_rate: 0.05, epochs: 60, batch_size: 64, seed: 42 }
    }
}

/// A ReLU MLP mapping a scalar key to a scalar prediction, with input and
/// output normalisation folded in.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Layer>,
    /// Input normalisation `t = (k − k_mid) / k_half`.
    k_mid: f64,
    k_half: f64,
    /// Output denormalisation `y = ŷ·y_half + y_mid`.
    y_mid: f64,
    y_half: f64,
    /// Scratch buffers so prediction never allocates.
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
}

impl Mlp {
    /// Train an MLP with the given hidden-layer widths (e.g. `&[8]` for
    /// `1:8:1`, `&[16, 16]` for `1:16:16:1`; empty = plain linear model)
    /// on `(keys[i], targets[i])`.
    ///
    /// # Panics
    /// Panics on empty or mismatched input.
    pub fn train(keys: &[f64], targets: &[f64], hidden: &[usize], cfg: MlpConfig) -> Self {
        assert_eq!(keys.len(), targets.len(), "keys/targets length mismatch");
        assert!(!keys.is_empty(), "empty training set");
        let n = keys.len();
        let (kmin, kmax) =
            keys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &k| (a.min(k), b.max(k)));
        let (ymin, ymax) = targets
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &y| (a.min(y), b.max(y)));
        let k_mid = 0.5 * (kmin + kmax);
        let k_half = (0.5 * (kmax - kmin)).max(f64::MIN_POSITIVE);
        let y_mid = 0.5 * (ymin + ymax);
        let y_half = (0.5 * (ymax - ymin)).max(f64::MIN_POSITIVE);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(1);
        dims.extend_from_slice(hidden);
        dims.push(1);
        let mut layers: Vec<Layer> =
            dims.windows(2).map(|w| Layer::new(w[0], w[1], &mut rng)).collect();

        let width = dims.iter().copied().max().unwrap_or(1);
        // Pre-normalised training data.
        let xs: Vec<f64> = keys.iter().map(|&k| (k - k_mid) / k_half).collect();
        let ys: Vec<f64> = targets.iter().map(|&y| (y - y_mid) / y_half).collect();
        let mut order: Vec<usize> = (0..n).collect();

        // Per-sample activations for backprop.
        let nlayers = layers.len();
        let mut acts: Vec<Vec<f64>> = dims.iter().map(|&d| vec![0.0; d]).collect();
        let mut deltas: Vec<Vec<f64>> = dims.iter().map(|&d| vec![0.0; d]).collect();

        for _epoch in 0..cfg.epochs {
            // Shuffle.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(cfg.batch_size) {
                let lr = cfg.learning_rate / batch.len() as f64;
                for &idx in batch {
                    // Forward.
                    acts[0][0] = xs[idx];
                    for (l, layer) in layers.iter().enumerate() {
                        let is_last = l == nlayers - 1;
                        for o in 0..layer.outputs {
                            let mut z = layer.b[o];
                            for i in 0..layer.inputs {
                                z += layer.w[o * layer.inputs + i] * acts[l][i];
                            }
                            acts[l + 1][o] = if is_last { z } else { z.max(0.0) };
                        }
                    }
                    // Backward (squared loss).
                    let err = acts[nlayers][0] - ys[idx];
                    deltas[nlayers][0] = err;
                    for l in (0..nlayers).rev() {
                        let is_last = l == nlayers - 1;
                        // δ for this layer's outputs (apply ReLU mask).
                        for o in 0..layers[l].outputs {
                            if !is_last && acts[l + 1][o] <= 0.0 {
                                deltas[l + 1][o] = 0.0;
                            }
                        }
                        // Propagate to inputs before touching weights.
                        if l > 0 {
                            for i in 0..layers[l].inputs {
                                let mut d = 0.0;
                                for o in 0..layers[l].outputs {
                                    d += layers[l].w[o * layers[l].inputs + i] * deltas[l + 1][o];
                                }
                                deltas[l][i] = d;
                            }
                        }
                        // SGD step.
                        let layer = &mut layers[l];
                        for o in 0..layer.outputs {
                            let d = deltas[l + 1][o];
                            if d == 0.0 {
                                continue;
                            }
                            layer.b[o] -= lr * d;
                            for i in 0..layer.inputs {
                                layer.w[o * layer.inputs + i] -= lr * d * acts[l][i];
                            }
                        }
                    }
                }
            }
        }
        Mlp {
            layers,
            k_mid,
            k_half,
            y_mid,
            y_half,
            scratch_a: vec![0.0; width],
            scratch_b: vec![0.0; width],
        }
    }

    /// Predict the target for `key` (immutable, allocation-free via
    /// interior scratch copies — callers needing concurrency should clone).
    pub fn predict(&mut self, key: f64) -> f64 {
        let nlayers = self.layers.len();
        self.scratch_a[0] = (key - self.k_mid) / self.k_half;
        for (l, layer) in self.layers.iter().enumerate() {
            let is_last = l == nlayers - 1;
            for o in 0..layer.outputs {
                let mut z = layer.b[o];
                for i in 0..layer.inputs {
                    z += layer.w[o * layer.inputs + i] * self.scratch_a[i];
                }
                self.scratch_b[o] = if is_last { z } else { z.max(0.0) };
            }
            std::mem::swap(&mut self.scratch_a, &mut self.scratch_b);
        }
        self.scratch_a[0] * self.y_half + self.y_mid
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let targets: Vec<f64> = keys.iter().map(|&k| 3.0 * k + 100.0).collect();
        (keys, targets)
    }

    #[test]
    fn learns_linear_function() {
        let (keys, targets) = linear_data(500);
        let mut mlp = Mlp::train(&keys, &targets, &[], MlpConfig::default());
        for &k in &[0.0, 100.0, 250.0, 499.0] {
            let pred = mlp.predict(k);
            let truth = 3.0 * k + 100.0;
            assert!(
                (pred - truth).abs() < 0.05 * (truth.abs() + 1.0),
                "k={k}: pred {pred} truth {truth}"
            );
        }
    }

    #[test]
    fn hidden_layer_learns_nonlinearity() {
        let keys: Vec<f64> = (0..800).map(|i| i as f64 / 100.0).collect();
        let targets: Vec<f64> = keys.iter().map(|&k| (k - 4.0).abs() * 50.0).collect();
        let cfg = MlpConfig { epochs: 200, learning_rate: 0.02, ..Default::default() };
        let mut mlp = Mlp::train(&keys, &targets, &[8], cfg);
        // |k−4| is non-linear: a ReLU net should fit it far better than the
        // best line (whose max error is ≥ 100 on this range).
        let max_err = keys
            .iter()
            .zip(&targets)
            .map(|(&k, &t)| (mlp.predict(k) - t).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 60.0, "max_err {max_err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (keys, targets) = linear_data(200);
        let mut a = Mlp::train(&keys, &targets, &[4], MlpConfig::default());
        let mut b = Mlp::train(&keys, &targets, &[4], MlpConfig::default());
        assert_eq!(a.predict(50.0), b.predict(50.0));
    }

    #[test]
    fn param_counts() {
        let (keys, targets) = linear_data(50);
        let lin = Mlp::train(&keys, &targets, &[], MlpConfig { epochs: 1, ..Default::default() });
        assert_eq!(lin.num_params(), 2); // w + b
        let nn = Mlp::train(&keys, &targets, &[8], MlpConfig { epochs: 1, ..Default::default() });
        assert_eq!(nn.num_params(), (8 + 8) + (8 + 1)); // 1→8 + 8→1
        let deep =
            Mlp::train(&keys, &targets, &[4, 4], MlpConfig { epochs: 1, ..Default::default() });
        assert_eq!(deep.num_params(), (4 + 4) + (16 + 4) + (4 + 1));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_input_panics() {
        Mlp::train(&[], &[], &[4], MlpConfig::default());
    }
}
