//! # polyfit-baselines — comparator methods from the PolyFit evaluation
//!
//! Every non-PolyFit method of the paper's Table IV, implemented from
//! scratch so the experiment harness can regenerate Tables V–VI and
//! Figures 15–20:
//!
//! | Module | Paper method | Guarantees |
//! |--------|--------------|------------|
//! | [`rmi`] | RMI \[33\] extended to range aggregates (Appendix A/B) | abs + rel via last-mile fallback |
//! | [`fitting`] | FITing-tree \[20\] (shrinking-cone linear segments) | abs + rel |
//! | [`hist`] | Entropy-based histogram \[52\] | none (heuristic) |
//! | [`stree`] | S-tree: B+-tree over a uniform sample | none (heuristic) |
//! | [`s2`] | S2 sequential sampling \[26\] | probabilistic |
//! | [`mlp`] | The neural models of Appendix B-1 (Table VI) | none |
//!
//! All SUM/COUNT methods share the half-open `(lq, uq]` query convention
//! documented in `polyfit-exact`, and the learned methods are extended to
//! range aggregates exactly as the paper's Appendix A prescribes: fit the
//! cumulative function, then apply the Lemma 2/3 error machinery.

pub mod fitting;
pub mod hist;
pub mod hist2d;
pub mod mlp;
pub mod rmi;
pub mod s2;
pub mod stree;

pub use fitting::FitingTree;
pub use hist::EquiDepthHistogram;
pub use hist2d::GridHistogram2d;
pub use mlp::Mlp;
pub use rmi::Rmi;
pub use s2::{S2Dispatch, S2Dispatch2d, S2Mode, S2Sampler, S2Sampler2d};
pub use stree::STree;
