//! Two-key histogram heuristic (the Table IV "Hist supports 2 keys" row).
//!
//! A `B × B` equi-width grid over the data bounding box with per-cell
//! counts and a 2-D prefix-sum, answering rectangle COUNT by
//! inclusion–exclusion over snapped cells plus uniform-interpolation of
//! the partial boundary strips. Like its 1-D sibling this is a heuristic:
//! fast and small but without error guarantees.

/// Equi-width 2-D histogram over points.
#[derive(Clone, Debug)]
pub struct GridHistogram2d {
    bins: usize,
    u0: f64,
    v0: f64,
    step_u: f64,
    step_v: f64,
    /// `(bins+1)²` prefix sums; `prefix[i][j]` = count in cells `< (i, j)`.
    prefix: Vec<f64>,
}

impl GridHistogram2d {
    /// Build with `bins × bins` cells from `(u, v)` points.
    ///
    /// # Panics
    /// Panics on empty input or zero bins.
    pub fn new(points: &[(f64, f64)], bins: usize) -> Self {
        assert!(!points.is_empty(), "empty input");
        assert!(bins >= 1, "need at least one bin");
        let mut u0 = f64::INFINITY;
        let mut u1 = f64::NEG_INFINITY;
        let mut v0 = f64::INFINITY;
        let mut v1 = f64::NEG_INFINITY;
        for &(u, v) in points {
            u0 = u0.min(u);
            u1 = u1.max(u);
            v0 = v0.min(v);
            v1 = v1.max(v);
        }
        let step_u = ((u1 - u0) / bins as f64).max(f64::MIN_POSITIVE);
        let step_v = ((v1 - v0) / bins as f64).max(f64::MIN_POSITIVE);
        let w = bins + 1;
        let mut prefix = vec![0.0f64; w * w];
        for &(u, v) in points {
            let iu = (((u - u0) / step_u) as usize).min(bins - 1);
            let iv = (((v - v0) / step_v) as usize).min(bins - 1);
            prefix[(iu + 1) * w + (iv + 1)] += 1.0;
        }
        for i in 0..w {
            for j in 1..w {
                prefix[i * w + j] += prefix[i * w + j - 1];
            }
        }
        for i in 1..w {
            for j in 0..w {
                prefix[i * w + j] += prefix[(i - 1) * w + j];
            }
        }
        GridHistogram2d { bins, u0, v0, step_u, step_v, prefix }
    }

    /// Cumulative estimate: count of points with `u' ≤ u`, `v' ≤ v`,
    /// interpolating uniformly within partial cells.
    pub fn cf(&self, u: f64, v: f64) -> f64 {
        // Fractional cell coordinates, clamped into the grid.
        let fu = ((u - self.u0) / self.step_u).clamp(0.0, self.bins as f64);
        let fv = ((v - self.v0) / self.step_v).clamp(0.0, self.bins as f64);
        let iu = fu.floor() as usize;
        let iv = fv.floor() as usize;
        let (du, dv) = (fu - iu as f64, fv - iv as f64);
        let w = self.bins + 1;
        let at = |i: usize, j: usize| self.prefix[i.min(self.bins) * w + j.min(self.bins)];
        // Bilinear interpolation of the prefix surface.
        let p00 = at(iu, iv);
        let p10 = at(iu + 1, iv);
        let p01 = at(iu, iv + 1);
        let p11 = at(iu + 1, iv + 1);
        p00 * (1.0 - du) * (1.0 - dv)
            + p10 * du * (1.0 - dv)
            + p01 * (1.0 - du) * dv
            + p11 * du * dv
    }

    /// Estimated COUNT over the rectangle `(u_lo, u_hi] × (v_lo, v_hi]`.
    pub fn query(&self, u_lo: f64, u_hi: f64, v_lo: f64, v_hi: f64) -> f64 {
        if u_lo >= u_hi || v_lo >= v_hi {
            return 0.0;
        }
        (self.cf(u_hi, v_hi) - self.cf(u_lo, v_hi) - self.cf(u_hi, v_lo) + self.cf(u_lo, v_lo))
            .max(0.0)
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.bins * self.bins
    }

    /// Heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.prefix.len() * std::mem::size_of::<f64>()
    }
}

impl polyfit::AggregateIndex2d for GridHistogram2d {
    fn name(&self) -> &'static str {
        "hist-2d"
    }

    fn kind(&self) -> polyfit::AggregateKind {
        polyfit::AggregateKind::Count
    }

    fn query_rect(
        &self,
        u_lo: f64,
        u_hi: f64,
        v_lo: f64,
        v_hi: f64,
    ) -> Option<polyfit::RangeAggregate> {
        // Per-cell uniformity assumption carries no deterministic bound.
        match polyfit::classify_rect_bounds(u_lo, u_hi, v_lo, v_hi) {
            polyfit::QueryBounds::NonFinite => None,
            polyfit::QueryBounds::Reversed => Some(polyfit::RangeAggregate::heuristic(0.0)),
            polyfit::QueryBounds::Proper => Some(polyfit::RangeAggregate::heuristic(
                GridHistogram2d::query(self, u_lo, u_hi, v_lo, v_hi),
            )),
        }
    }

    fn size_bytes(&self) -> usize {
        GridHistogram2d::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push((i as f64, j as f64));
            }
        }
        pts
    }

    #[test]
    fn uniform_grid_is_near_exact() {
        let pts = grid_points(50); // 2500 points on integer lattice
        let h = GridHistogram2d::new(&pts, 25);
        let est = h.query(-0.5, 24.5, -0.5, 24.5); // exact: 25×25 = 625
        assert!((est - 625.0).abs() < 60.0, "est {est}");
        let full = h.query(-1.0, 50.0, -1.0, 50.0);
        assert!((full - 2500.0).abs() < 1e-6, "full {full}");
    }

    #[test]
    fn finer_grid_reduces_error() {
        let pts: Vec<(f64, f64)> = (0..20_000u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                (
                    (h >> 32) as f64 / u32::MAX as f64 * 100.0,
                    (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * 100.0,
                )
            })
            .collect();
        let brute =
            pts.iter().filter(|(u, v)| *u > 13.0 && *u <= 57.0 && *v > 22.0 && *v <= 91.0).count()
                as f64;
        let coarse = GridHistogram2d::new(&pts, 8);
        let fine = GridHistogram2d::new(&pts, 128);
        let e_coarse = (coarse.query(13.0, 57.0, 22.0, 91.0) - brute).abs();
        let e_fine = (fine.query(13.0, 57.0, 22.0, 91.0) - brute).abs();
        assert!(e_fine <= e_coarse + 1.0, "fine {e_fine} vs coarse {e_coarse}");
    }

    #[test]
    fn degenerate_queries() {
        let pts = grid_points(10);
        let h = GridHistogram2d::new(&pts, 4);
        assert_eq!(h.query(5.0, 5.0, 0.0, 9.0), 0.0);
        assert_eq!(h.query(6.0, 5.0, 0.0, 9.0), 0.0);
    }

    #[test]
    fn single_bin() {
        let pts = grid_points(10);
        let h = GridHistogram2d::new(&pts, 1);
        assert_eq!(h.num_cells(), 1);
        let full = h.query(-1.0, 10.0, -1.0, 10.0);
        assert!((full - 100.0).abs() < 1e-6);
    }

    #[test]
    fn size_accounting() {
        let pts = grid_points(10);
        let h = GridHistogram2d::new(&pts, 16);
        assert_eq!(h.size_bytes(), 17 * 17 * 8);
    }
}
