//! Property-based tests for the comparator methods: each guarantee-bearing
//! baseline must respect its δ bound on arbitrary cumulative functions,
//! and the heuristics must stay sane.

use proptest::prelude::*;

use polyfit_baselines::{EquiDepthHistogram, FitingTree, GridHistogram2d, Rmi, STree};

fn cumulative(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.01f64..5.0, 0.0f64..10.0), 2..max_len).prop_map(|pairs| {
        let mut key = 0.0;
        let mut acc = 0.0;
        let mut keys = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (gap, m) in pairs {
            key += gap;
            acc += m;
            keys.push(key);
            values.push(acc);
        }
        (keys, values)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// FITing-tree: every key is approximated within δ.
    #[test]
    fn fitting_respects_delta((keys, values) in cumulative(120), delta in 0.5f64..30.0) {
        let t = FitingTree::new(&keys, &values, delta);
        for (k, v) in keys.iter().zip(&values) {
            let err = (t.cf(*k) - v).abs();
            prop_assert!(err <= delta + 1e-7, "key {k}: err {err} > {delta}");
        }
    }

    /// RMI with last-mile correction: every key within δ.
    #[test]
    fn rmi_respects_delta((keys, values) in cumulative(120), delta in 0.5f64..30.0) {
        let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 4, 16], delta);
        for (k, v) in keys.iter().zip(&values) {
            let err = (rmi.cf(*k) - v).abs();
            prop_assert!(err <= delta + 1e-7, "key {k}: err {err} > {delta}");
        }
    }

    /// Equi-depth histogram: interpolation error is bounded by one bucket's
    /// mass.
    #[test]
    fn hist_error_bounded_by_bucket_mass((keys, values) in cumulative(150), buckets in 2usize..40) {
        let h = EquiDepthHistogram::new(&keys, &values, buckets);
        let total = *values.last().unwrap();
        let bucket_mass = total / buckets as f64;
        for (k, v) in keys.iter().zip(&values) {
            let err = (h.cf(*k) - v).abs();
            // One bucket of slack plus the largest single measure (a bucket
            // boundary can overshoot the equal-mass target by one record).
            let max_measure = values.windows(2).map(|w| w[1] - w[0]).fold(values[0], f64::max);
            prop_assert!(err <= bucket_mass + max_measure + 1e-7,
                "key {k}: err {err} > bucket {bucket_mass} + {max_measure}");
        }
    }

    /// S-tree at full rate is exact.
    #[test]
    fn stree_full_rate_exact((keys, _values) in cumulative(100), qa in 0usize..100, qb in 0usize..100) {
        let st = STree::new(&keys, 1.0, 9);
        let (a, b) = (qa % keys.len(), qb % keys.len());
        let (l, u) = (keys[a.min(b)], keys[a.max(b)]);
        let brute = keys.iter().filter(|&&k| k > l && k <= u).count() as f64;
        prop_assert_eq!(st.query(l, u), brute);
    }

    /// 2-D grid histogram: the full-domain query equals the point count and
    /// estimates are non-negative and monotone in the rectangle.
    #[test]
    fn hist2d_sanity(pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..100), bins in 1usize..20) {
        let h = GridHistogram2d::new(&pts, bins);
        let full = h.query(-60.0, 60.0, -60.0, 60.0);
        prop_assert!((full - pts.len() as f64).abs() <= 1e-6);
        let inner = h.query(-10.0, 10.0, -10.0, 10.0);
        let outer = h.query(-20.0, 20.0, -20.0, 20.0);
        prop_assert!(inner >= -1e-9);
        prop_assert!(outer >= inner - 1e-6, "outer {outer} < inner {inner}");
    }
}
