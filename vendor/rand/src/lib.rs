//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the rand 0.8 API its data generators and
//! samplers actually use: `StdRng` (here xoshiro256++ seeded by
//! SplitMix64), `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over half-open and inclusive ranges, and
//! `Rng::gen_bool`. Distributions are uniform; there is no thread-local
//! RNG and no OS entropy — every generator must be explicitly seeded,
//! which is exactly the reproducibility discipline the experiment
//! harness wants.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Derive the full RNG state from one `u64` (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — small, fast, and statistically solid; the state is
/// expanded from the seed with SplitMix64 as its authors recommend.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from the standard (uniform) distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform range sampler (the `gen_range` vocabulary).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (`hi` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard the open upper bound against rounding.
                if v >= hi { lo.max(hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing RNG extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The `rand::rngs` namespace, so `use rand::rngs::StdRng` works.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&x));
            let i = rng.gen_range(2usize..5);
            assert!((2..5).contains(&i));
            let j = rng.gen_range(0i64..=3);
            assert!((0..=3).contains(&j));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
