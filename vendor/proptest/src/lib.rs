//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, range and tuple strategies, `collection::vec`,
//! `prop_map`, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Semantics: each test function runs `cases` deterministic random cases
//! (seeded from the test name, so failures reproduce across runs). There
//! is **no shrinking** — a failing case reports the formatted assertion
//! message only. That trades minimal counterexamples for zero
//! dependencies, which is the right trade inside this offline workspace.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Construct a rejection.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` draws a single concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and a length drawn
    /// uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[inline]
fn seed_of(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property test: draw inputs and run the case body until
/// `cfg.cases` cases pass, panicking on the first failure. Called by the
/// code the [`proptest!`] macro expands to — not public API.
#[doc(hidden)]
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_of(name));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > 64 * u64::from(cfg.cases) {
                    panic!("{name}: too many rejected cases ({rejected}); weaken prop_assume!");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {passed} failed: {msg}");
            }
        }
    }
}

/// Define property tests. Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0.0f64..1.0, (a, b) in (0usize..9, 0usize..9)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(clippy::redundant_closure_call)]
            $crate::run_cases(&($cfg), stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Reject the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// The proptest prelude: everything test modules import with
/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n = {n}");
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u8..3, 0.0f64..1.0),
            v in crate::collection::vec(0usize..100, 1..20),
        ) {
            prop_assert!(a < 3);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn prop_map_applies(doubled in (0usize..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_retries(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failures_panic() {
        run_cases(&ProptestConfig::with_cases(4), "failures_panic", |_rng| {
            Err(TestCaseError::fail("boom".into()))
        });
    }

    #[test]
    fn deterministic_per_name() {
        let mut first = Vec::new();
        run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
            first.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        run_cases(&ProptestConfig::with_cases(8), "det", |rng| {
            second.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
