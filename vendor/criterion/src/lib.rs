//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the API surface the workspace's benches use — `Criterion` with its
//! builder knobs, benchmark groups, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: warm up for `warm_up_time`, then
//! run iterations for `measurement_time` and report the mean wall-clock
//! nanoseconds per iteration. No statistics, no plots, no comparison to
//! saved baselines — numbers print to stdout in a `name: N ns/iter`
//! format good enough for before/after eyeballing.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting bench work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, optionally parameterised (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Identifier rendered as `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{name}/{param}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { full: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(full: String) -> Self {
        BenchmarkId { full }
    }
}

/// Runs one benchmark body repeatedly and records the mean latency.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f` repeatedly; the mean is reported by the harness afterwards.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Shared measurement configuration.
#[derive(Clone, Debug)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
}

/// The benchmark harness entry point (builder + runner).
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                warm_up: Duration::from_millis(200),
                measurement: Duration::from_millis(500),
            },
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub has no sampling phases.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Wall-clock budget for the measurement phase of each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Wall-clock budget for the warm-up phase of each benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        let mut b = Bencher {
            warm_up: self.config.warm_up,
            measurement: self.config.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!("{label}: {:.1} ns/iter ({} iters)", b.mean_ns, b.iters);
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.full, f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.full, |b| f(b, input));
        self
    }

    /// Open a named group; benchmarks inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// No-op; kept so `criterion_main!`-style drivers can call it.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub has no sampling phases.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// See [`Criterion::measurement_time`].
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement = d;
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full);
        self.criterion.run(&label, f);
        self
    }

    /// Run a parameterised benchmark within this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full);
        self.criterion.run(&label, |b| f(b, input));
        self
    }

    /// Close the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_mean() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 512).full, "fit/512");
        assert_eq!(BenchmarkId::from("plain").full, "plain");
    }
}
