//! Property tests pinning the compiled 2-D read path to the pointer
//! quadtree oracle, bit for bit.
//!
//! The compiled directory ([`polyfit::twod_directory::TwodDirectory`]) is
//! a from-scratch re-implementation of the tree walk: flattened cell
//! location via `partition_point` over the stored lattice lines, a
//! fixed-stride coefficient arena, and a sort-and-share batched sweep.
//! None of that is allowed to change a single answer — every test here
//! compares `to_bits()`, not tolerances — under adversarial inputs:
//! duplicated coordinates, one-ULP-separated tiles, signed zeros, NaN /
//! reversed / degenerate rectangles, and batch sizes straddling the
//! scalar-vs-sweep crossover.

use proptest::prelude::*;

use polyfit_suite::exact::dataset::Point2d;
use polyfit_suite::polyfit::twod::{Quad2dConfig, QuadPolyFit};
use polyfit_suite::polyfit::twod_directory::RECT_SWEEP_MIN;
use polyfit_suite::polyfit::{AggregateIndex2d, BuildOptions};

fn cfg(res: usize) -> Quad2dConfig {
    Quad2dConfig { grid_resolution: res, ..Default::default() }
}

/// Deterministic point cloud with adversarial structure: clustered mass,
/// exact duplicates, one-ULP neighbours, and signed-zero coordinates.
fn adversarial_points(n: usize, seed: u64) -> Vec<Point2d> {
    let mut pts = Vec::with_capacity(n + 8);
    let mut h = seed | 1;
    for i in 0..n {
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29) ^ (i as u64);
        let u = ((h >> 11) as f64 / (1u64 << 53) as f64) * 200.0 - 100.0;
        let v = ((h.wrapping_mul(0xD135_8469_2589_9ABD) >> 11) as f64 / (1u64 << 53) as f64)
            * 200.0
            - 100.0;
        let w = 1.0 + (h % 5) as f64;
        pts.push(Point2d::new(u, v, w));
        match i % 7 {
            // Exact duplicate of the previous point.
            1 => pts.push(Point2d::new(u, v, w)),
            // One-ULP neighbour: the tightest possible tile boundary.
            2 => pts.push(Point2d::new(f64::from_bits(u.to_bits() + 1), v, 1.0)),
            3 => pts.push(Point2d::new(u, f64::from_bits(v.to_bits() + 1), 1.0)),
            _ => {}
        }
    }
    // Signed zeros on both axes — the walk and the compiled locate must
    // agree on which side of a lattice line ±0.0 falls.
    pts.push(Point2d::new(0.0, -0.0, 1.0));
    pts.push(Point2d::new(-0.0, 0.0, 1.0));
    pts
}

/// Probe coordinates that stress the locate: lattice lines themselves,
/// one-ULP offsets around them, bbox corners, and out-of-domain values.
fn probe_coords(idx: &QuadPolyFit) -> Vec<f64> {
    let (u_lo, u_hi, _, _) = idx.bbox();
    let mut xs = vec![
        u_lo,
        u_hi,
        f64::from_bits(u_lo.to_bits() + 1),
        f64::from_bits(u_hi.to_bits().wrapping_sub(1)),
        0.0,
        -0.0,
        u_lo - 1.0,
        u_hi + 1.0,
        f64::NAN,
    ];
    let span = u_hi - u_lo;
    for k in 0..16 {
        let x = u_lo + span * (k as f64 / 15.0);
        xs.push(x);
        xs.push(f64::from_bits(x.to_bits() + 1));
        xs.push(f64::from_bits(x.to_bits().wrapping_sub(1)));
    }
    xs
}

#[test]
fn compiled_cf_matches_walk_on_adversarial_grid() {
    let pts = adversarial_points(3000, 0xA5A5);
    let idx = QuadPolyFit::build(&pts, 40.0, cfg(64)).expect("build");
    let us = probe_coords(&idx);
    for &u in &us {
        for &v in &us {
            assert_eq!(
                idx.cf(u, v).to_bits(),
                idx.cf_walk(u, v).to_bits(),
                "cf({u}, {v}) diverged from the pointer walk"
            );
        }
    }
}

#[test]
fn parallel_builds_bitwise_equal_across_thread_counts() {
    let pts = adversarial_points(12_000, 0xBEEF);
    let serial = QuadPolyFit::build_with(&pts, 30.0, cfg(64), &BuildOptions::with_threads(1))
        .expect("serial build");
    let reference = serial.to_bytes();
    for threads in [2usize, 4] {
        let par =
            QuadPolyFit::build_with(&pts, 30.0, cfg(64), &BuildOptions::with_threads(threads))
                .expect("parallel build");
        assert_eq!(par.to_bytes(), reference, "threads={threads} build differs from serial");
    }
}

#[test]
fn serialized_roundtrip_preserves_every_answer() {
    let pts = adversarial_points(4000, 0x5EED);
    let idx = QuadPolyFit::build(&pts, 25.0, cfg(64)).expect("build");
    let bytes = idx.to_bytes();
    let back = QuadPolyFit::from_bytes(&bytes).expect("decode");
    assert_eq!(back.to_bytes(), bytes, "re-encode is byte-stable");
    let us = probe_coords(&idx);
    for &u in &us {
        for &v in &us {
            assert_eq!(idx.cf(u, v).to_bits(), back.cf(u, v).to_bits());
        }
    }
}

/// Strategy for one possibly-degenerate rectangle: mostly proper windows,
/// with NaN, reversed, and zero-area rects mixed in.
fn rect_strategy() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    fn coord() -> impl Strategy<Value = f64> {
        (-120.0f64..120.0, 0u8..10).prop_map(|(x, sel)| match sel {
            7 => 0.0,
            8 => -0.0,
            9 => f64::NAN,
            _ => x,
        })
    }
    (coord(), coord(), coord(), coord())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batched sweep must agree bitwise with one-at-a-time queries for
    /// every batch size around the scalar/sweep crossover, including
    /// batches polluted with NaN / reversed / degenerate rectangles.
    #[test]
    fn batched_rects_bitwise_equal_scalar(
        rects in proptest::collection::vec(rect_strategy(), 0..(2 * RECT_SWEEP_MIN + 4)),
        seed in 0u64..8,
    ) {
        let pts = adversarial_points(1500, 0xC0FFEE ^ seed);
        let idx = QuadPolyFit::build(&pts, 60.0, cfg(32)).expect("build");
        let batch = AggregateIndex2d::query_batch_rect(&idx, &rects);
        prop_assert_eq!(batch.len(), rects.len());
        for (i, &(ul, uh, vl, vh)) in rects.iter().enumerate() {
            let one = AggregateIndex2d::query_rect(&idx, ul, uh, vl, vh);
            prop_assert_eq!(
                batch[i].map(|a| a.value.to_bits()),
                one.map(|a| a.value.to_bits()),
                "rect {} ({}, {}, {}, {})", i, ul, uh, vl, vh
            );
        }
    }

    /// Random probes: compiled CF and rectangle answers equal the pointer
    /// walk bitwise — including coordinates off the data's bounding box.
    #[test]
    fn compiled_answers_match_walk(
        coords in proptest::collection::vec(-150.0f64..150.0, 4..5),
        seed in 0u64..8,
    ) {
        let pts = adversarial_points(1200, 0xDADA ^ seed);
        let idx = QuadPolyFit::build(&pts, 60.0, cfg(32)).expect("build");
        let (ul, uh, vl, vh) = (coords[0], coords[1], coords[2], coords[3]);
        prop_assert_eq!(idx.cf(ul, vl).to_bits(), idx.cf_walk(ul, vl).to_bits());
        prop_assert_eq!(
            idx.query(ul, uh, vl, vh).to_bits(),
            idx.query_walk(ul, uh, vl, vh).to_bits()
        );
    }
}
