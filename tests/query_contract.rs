//! Cross-implementation conformance test for the query-boundary contract
//! (`polyfit::classify_bounds`): a serving layer forwards `(lo, hi)`
//! pairs from untrusted clients into whatever index sits behind the
//! trait object, so every implementation must agree on what degenerate
//! bounds mean —
//!
//! * non-finite endpoint (NaN or ±∞) ⇒ `None`;
//! * reversed bounds (`lo > hi`)     ⇒ the empty-range answer
//!   (`Some(0)` for SUM/COUNT-family queries, `None` for extremum and
//!   average queries);
//! * `query_batch` / `query_batch_par` agree with `query` bit-for-bit on
//!   all of it.

use polyfit_suite::baselines::{
    EquiDepthHistogram, FitingTree, Rmi, S2Dispatch, S2Mode, S2Sampler, STree,
};
use polyfit_suite::exact::dataset::{dedup_max, dedup_sum, sort_records, Record};
use polyfit_suite::exact::{ARTree, AggTree, BPlusTree, KeyCumulativeArray};
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::{CertifiedRelSum, PolyFitMax, PolyFitSum, RelDispatch};

fn sum_records(n: usize) -> Vec<Record> {
    let mut rs: Vec<Record> =
        (0..n).map(|i| Record::new(i as f64 * 0.75, 1.0 + ((i * 7) % 5) as f64)).collect();
    sort_records(&mut rs);
    dedup_sum(rs)
}

fn max_records(n: usize) -> Vec<Record> {
    let mut rs: Vec<Record> =
        (0..n).map(|i| Record::new(i as f64, 50.0 + ((i as f64) * 0.11).sin() * 20.0)).collect();
    sort_records(&mut rs);
    dedup_max(rs)
}

/// The probe battery: every degenerate shape a hostile client can send,
/// plus proper ranges so batch splicing is exercised around them.
fn probes(lo_key: f64, hi_key: f64) -> Vec<(f64, f64)> {
    let mid = (lo_key + hi_key) / 2.0;
    vec![
        (lo_key, hi_key),                   // proper, full domain
        (mid, hi_key),                      // proper
        (hi_key, lo_key),                   // reversed, finite
        (mid + 1.0, mid),                   // reversed, adjacent
        (mid, mid),                         // degenerate (proper)
        (f64::NAN, mid),                    // NaN low
        (mid, f64::NAN),                    // NaN high
        (f64::NAN, f64::NAN),               // NaN both
        (f64::NEG_INFINITY, mid),           // -inf low
        (mid, f64::INFINITY),               // +inf high
        (f64::NEG_INFINITY, f64::INFINITY), // full-infinite
        (f64::INFINITY, f64::NEG_INFINITY), // infinite *and* reversed
        (f64::NAN, f64::NEG_INFINITY),      // NaN + inf
        (lo_key - 100.0, lo_key - 50.0),    // proper, left of domain
        (hi_key + 1.0, hi_key + 2.0),       // proper, right of domain
        (mid, hi_key + 1e6),                // proper, overhanging
    ]
}

/// All 12 core `AggregateIndex` implementations plus the 1-D baseline
/// impls, each tagged with its aggregate family for the reversed-bounds
/// expectation.
fn all_methods() -> Vec<Box<dyn AggregateIndex>> {
    let records = sum_records(3000);
    let maxrec = max_records(3000);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let mut cf = Vec::with_capacity(records.len());
    let mut acc = 0.0;
    for r in &records {
        acc += r.measure;
        cf.push(acc);
    }

    let mut dynamic =
        DynamicPolyFitSum::new(records.clone(), 20.0, PolyFitConfig::default(), 1_000_000).unwrap();
    for i in 0..100 {
        dynamic.insert(keys[0] + 0.1 + i as f64 * 0.31, 2.0);
    }

    vec![
        // -- the 12 core impls ------------------------------------------------
        Box::new(PolyFitSum::build(records.clone(), 20.0, PolyFitConfig::default()).unwrap()),
        Box::new(PolyFitMax::build(maxrec.clone(), 5.0, PolyFitConfig::default()).unwrap()),
        Box::new(PolyFitMax::build_min(maxrec.clone(), 5.0, PolyFitConfig::default()).unwrap()),
        Box::new(dynamic),
        Box::new(KeyCumulativeArray::new(&records)),
        Box::new(BPlusTree::new(&records)),
        Box::new(AggTree::new(&maxrec)),
        Box::new(GuaranteedSum::with_abs_guarantee(records.clone(), 40.0, Default::default())),
        Box::new(GuaranteedMax::with_abs_guarantee(maxrec.clone(), 5.0, Default::default())),
        Box::new(GuaranteedMin::with_abs_guarantee(maxrec.clone(), 5.0, Default::default())),
        Box::new(GuaranteedAvg::with_abs_guarantees(
            records.clone(),
            30.0,
            8.0,
            Default::default(),
        )),
        Box::new(CertifiedRelSum::new(
            PolyFitSum::build(records.clone(), 20.0, PolyFitConfig::default()).unwrap(),
            KeyCumulativeArray::new(&records),
            20.0,
            0.05,
        )),
        // -- relative dispatch adapters ---------------------------------------
        Box::new(RelDispatch::new(
            GuaranteedSum::with_rel_guarantee(records.clone(), 30.0, Default::default()),
            0.05,
        )),
        Box::new(RelDispatch::new(
            GuaranteedMax::with_rel_guarantee(maxrec.clone(), 2.0, Default::default()),
            0.1,
        )),
        Box::new(RelDispatch::new(
            GuaranteedMin::with_rel_guarantee(maxrec.clone(), 2.0, Default::default()),
            0.1,
        )),
        // -- learned / heuristic baselines ------------------------------------
        Box::new(Rmi::new(keys.clone(), cf.clone(), &[1, 8, 64], 25.0)),
        Box::new(FitingTree::new(&keys, &cf, 25.0)),
        Box::new(EquiDepthHistogram::new(&keys, &cf, 32)),
        Box::new(STree::new(&keys, 0.5, 7)),
        Box::new(S2Dispatch::new(S2Sampler::new(keys.clone()), S2Mode::Abs(200.0), 7)),
    ]
}

/// True for families whose empty-range answer is `Some(0)`; extremum and
/// average families answer `None`.
fn sum_family(kind: AggregateKind) -> bool {
    matches!(kind, AggregateKind::Sum | AggregateKind::Count)
}

#[test]
fn reversed_and_non_finite_bounds_answer_uniformly() {
    let lo_key = 0.0;
    let hi_key = 3000.0;
    for m in &all_methods() {
        // Non-finite endpoints: None, always.
        for &(lo, hi) in probes(lo_key, hi_key).iter() {
            if !lo.is_finite() || !hi.is_finite() {
                assert!(
                    m.query(lo, hi).is_none(),
                    "{} ({:?}): non-finite ({lo}, {hi}] must answer None",
                    m.name(),
                    m.kind()
                );
            }
        }
        // Reversed bounds: the family's empty-range answer.
        for &(lo, hi) in &[(hi_key, lo_key), (1.0 + 1e-9, 1.0)] {
            let ans = m.query(lo, hi);
            if sum_family(m.kind()) {
                let a = ans.unwrap_or_else(|| {
                    panic!("{} ({:?}): reversed must answer Some(0)", m.name(), m.kind())
                });
                assert_eq!(
                    a.value,
                    0.0,
                    "{} ({:?}): reversed range must sum to 0",
                    m.name(),
                    m.kind()
                );
            } else {
                assert!(
                    ans.is_none(),
                    "{} ({:?}): reversed extremum/average must answer None",
                    m.name(),
                    m.kind()
                );
            }
        }
    }
}

#[test]
fn batch_and_parallel_batch_agree_with_query_on_degenerate_bounds() {
    let battery = probes(0.0, 3000.0);
    for m in &all_methods() {
        let batch = m.query_batch(&battery);
        let par0 = m.query_batch_par(&battery, 0);
        let par3 = m.query_batch_par(&battery, 3);
        assert_eq!(batch.len(), battery.len(), "{}", m.name());
        for (i, &(lo, hi)) in battery.iter().enumerate() {
            let single = m.query(lo, hi);
            for (what, got) in [("batch", &batch[i]), ("par(0)", &par0[i]), ("par(3)", &par3[i])] {
                match (got, &single) {
                    (Some(b), Some(s)) => {
                        assert_eq!(
                            b.value.to_bits(),
                            s.value.to_bits(),
                            "{} {what} probe {i} ({lo}, {hi}]",
                            m.name()
                        );
                        assert_eq!(b.guarantee, s.guarantee, "{} {what} probe {i}", m.name());
                        assert_eq!(
                            b.used_fallback,
                            s.used_fallback,
                            "{} {what} probe {i}",
                            m.name()
                        );
                    }
                    (None, None) => {}
                    other => {
                        panic!("{} {what} probe {i} ({lo}, {hi}]: {other:?}", m.name())
                    }
                }
            }
        }
    }
}

/// The 2-D implementations honor the same contract on rectangles.
#[test]
fn rect_queries_honor_the_contract() {
    let points: Vec<polyfit_suite::exact::Point2d> = (0..900)
        .map(|i| polyfit_suite::exact::Point2d::new((i % 30) as f64, (i / 30) as f64, 1.0))
        .collect();
    let artree = ARTree::new(points.clone());
    let quad =
        QuadPolyFit::build(&points, 5.0, polyfit_suite::polyfit::twod::Quad2dConfig::default())
            .unwrap();
    let methods: Vec<&dyn AggregateIndex2d> = vec![&artree, &quad];
    for m in &methods {
        // Non-finite on either axis: None.
        for &(a, b, c, d) in &[
            (f64::NAN, 10.0, 0.0, 10.0),
            (0.0, 10.0, f64::INFINITY, 20.0),
            (f64::NEG_INFINITY, f64::INFINITY, 0.0, 10.0),
        ] {
            assert!(m.query_rect(a, b, c, d).is_none(), "{}: non-finite rect", m.name());
        }
        // Reversed on either axis: the empty COUNT.
        for &(a, b, c, d) in &[(10.0, 0.0, 0.0, 10.0), (0.0, 10.0, 20.0, 10.0)] {
            let ans = m
                .query_rect(a, b, c, d)
                .unwrap_or_else(|| panic!("{}: reversed rect must answer Some(0)", m.name()));
            assert_eq!(ans.value, 0.0, "{}: reversed rect must count 0", m.name());
        }
        // query_batch_rect agrees with query_rect on the battery.
        let rects = vec![
            (0.0, 20.0, 0.0, 20.0),
            (20.0, 0.0, 0.0, 20.0),
            (f64::NAN, 1.0, 0.0, 1.0),
            (5.0, 5.0, 5.0, 5.0),
        ];
        let batch = m.query_batch_rect(&rects);
        for (i, &(a, b, c, d)) in rects.iter().enumerate() {
            let single = m.query_rect(a, b, c, d);
            assert_eq!(
                batch[i].map(|x| x.value.to_bits()),
                single.map(|x| x.value.to_bits()),
                "{} rect {i}",
                m.name()
            );
        }
    }
}
