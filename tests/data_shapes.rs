//! Cross-shape robustness: the guarantees must hold regardless of key and
//! measure distribution (uniform, Zipf-clustered, lognormal-skewed), not
//! just on the paper's three datasets.

use polyfit_suite::data::query_intervals_from_keys;
use polyfit_suite::data::synthetic::{lognormal_measures, uniform_keys, zipf_keys};
use polyfit_suite::exact::dataset::{dedup_max, dedup_sum, sort_records, Record};
use polyfit_suite::exact::{AggTree, KeyCumulativeArray};
use polyfit_suite::polyfit::prelude::*;

fn prepare_sum(raw: Vec<polyfit_suite::data::Record>) -> Vec<Record> {
    let mut rs: Vec<Record> = raw.iter().map(|r| Record::new(r.key, r.measure)).collect();
    sort_records(&mut rs);
    dedup_sum(rs)
}

fn check_sum_guarantee(records: Vec<Record>, eps: f64, label: &str) {
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let driver = GuaranteedSum::with_abs_guarantee(records, eps, PolyFitConfig::default());
    for q in query_intervals_from_keys(&keys, 250, 3) {
        let err = (driver.query_abs(q.lo, q.hi) - exact.range_sum(q.lo, q.hi)).abs();
        assert!(err <= eps + 1e-6, "{label} ({}, {}]: err {err}", q.lo, q.hi);
    }
}

#[test]
fn uniform_keys_guarantee() {
    check_sum_guarantee(prepare_sum(uniform_keys(40_000, -1000.0, 1000.0, 11)), 30.0, "uniform");
}

#[test]
fn zipf_clustered_guarantee() {
    // Extreme hot spots: many duplicate-ish keys folding into large
    // measures at a few positions — a hard case for smooth fitting.
    check_sum_guarantee(prepare_sum(zipf_keys(40_000, 50, 1.4, 13)), 30.0, "zipf");
}

#[test]
fn lognormal_measures_guarantee() {
    // Heavy-tailed measures: single records can carry huge mass.
    check_sum_guarantee(prepare_sum(lognormal_measures(20_000, 1.0, 1.5, 17)), 200.0, "lognormal");
}

#[test]
fn zipf_max_guarantee() {
    let mut rs: Vec<Record> = zipf_keys(20_000, 50, 1.2, 19)
        .iter()
        .map(|r| Record::new(r.key, 10.0 + (r.key * 0.01).sin().abs() * 100.0))
        .collect();
    sort_records(&mut rs);
    let rs = dedup_max(rs);
    let exact = AggTree::new(&rs);
    let keys: Vec<f64> = rs.iter().map(|r| r.key).collect();
    let driver = GuaranteedMax::with_abs_guarantee(rs, 8.0, PolyFitConfig::default());
    for q in query_intervals_from_keys(&keys, 200, 5) {
        let approx = driver.query_abs(q.lo, q.hi).expect("in-domain");
        let truth = exact.range_max(q.lo, q.hi).expect("non-empty");
        assert!((approx - truth).abs() <= 8.0 + 1e-5, "[{}, {}]", q.lo, q.hi);
    }
}

#[test]
fn segment_counts_track_difficulty() {
    // A sanity check of the mechanism itself: smooth uniform data needs
    // far fewer segments than hot-spotted Zipf data at equal δ.
    let uniform = prepare_sum(uniform_keys(40_000, 0.0, 1000.0, 23));
    let zipf = prepare_sum(zipf_keys(40_000, 50, 1.4, 23));
    let a = GuaranteedSum::with_abs_guarantee(uniform, 50.0, PolyFitConfig::default());
    let b = GuaranteedSum::with_abs_guarantee(zipf, 50.0, PolyFitConfig::default());
    assert!(
        a.index().num_segments() < b.index().num_segments(),
        "uniform {} !< zipf {}",
        a.index().num_segments(),
        b.index().num_segments()
    );
}
