//! Cross-crate integration tests for the build pipeline and the batched
//! query path: parallel builds must honor the same δ guarantee as serial
//! ones, and `query_batch` must equal sequential queries bit-for-bit for
//! every overriding implementation.

use polyfit_suite::data::{generate_hki, generate_tweet, query_intervals_from_keys};
use polyfit_suite::exact::dataset::{dedup_max, dedup_sum, sort_records, Record};
use polyfit_suite::exact::{AggTree, BPlusTree, KeyCumulativeArray};
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::{CertifiedRelSum, PolyFitMax, PolyFitSum};

fn tweet_records(n: usize) -> Vec<Record> {
    let mut rs: Vec<Record> =
        generate_tweet(n, 42).iter().map(|r| Record::new(r.key, r.measure)).collect();
    sort_records(&mut rs);
    dedup_sum(rs)
}

fn hki_records(n: usize) -> Vec<Record> {
    let mut rs: Vec<Record> =
        generate_hki(n, 42).iter().map(|r| Record::new(r.key, r.measure)).collect();
    sort_records(&mut rs);
    dedup_max(rs)
}

/// Query ranges over the key domain, including edge cases the batch path
/// must reproduce exactly: inverted, degenerate, out-of-domain, and
/// full-domain ranges.
fn ranges_of(keys: &[f64], n: usize) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> =
        query_intervals_from_keys(keys, n, 7).iter().map(|q| (q.lo, q.hi)).collect();
    let (first, last) = (keys[0], *keys.last().unwrap());
    out.push((last, first)); // inverted
    out.push((first, first)); // degenerate
    out.push((first - 100.0, first - 50.0)); // left of domain
    out.push((last + 1.0, last + 2.0)); // right of domain
    out.push((first - 1e9, last + 1e9)); // full domain and beyond
    out
}

#[test]
fn parallel_sum_build_within_delta_for_every_thread_count() {
    let records = tweet_records(20_000);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let ranges = ranges_of(&keys, 150);
    let delta = 50.0;
    for threads in [1usize, 2, 4] {
        let idx = PolyFitSum::build_with(
            records.clone(),
            delta,
            PolyFitConfig::default(),
            &BuildOptions::with_threads(threads),
        )
        .unwrap();
        assert!(idx.max_certified_error() <= delta + 1e-9, "threads {threads}");
        for &(l, u) in &ranges {
            let err = (idx.query(l, u) - exact.range_sum(l, u)).abs();
            assert!(err <= 2.0 * delta + 1e-6, "threads {threads} ({l}, {u}]: err {err}");
        }
    }
}

#[test]
fn parallel_max_build_within_delta_for_every_thread_count() {
    let records = hki_records(20_000);
    let exact = AggTree::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let ranges = ranges_of(&keys, 100);
    let delta = 60.0;
    for threads in [1usize, 2, 4] {
        let idx = PolyFitMax::build_with(
            records.clone(),
            delta,
            PolyFitConfig::default(),
            &BuildOptions::with_threads(threads),
        )
        .unwrap();
        assert!(idx.max_certified_error() <= delta + 1e-9, "threads {threads}");
        for &(l, u) in &ranges {
            let (approx, truth) = (idx.query_max(l, u), exact.range_max(l, u));
            match (approx, truth) {
                (Some(a), Some(t)) => assert!(
                    (a - t).abs() <= delta + 1e-6,
                    "threads {threads} [{l}, {u}]: approx {a} truth {t}"
                ),
                (a, t) => assert_eq!(a.is_some(), t.is_some(), "threads {threads} [{l}, {u}]"),
            }
        }
    }
}

#[test]
fn serial_options_reproduce_legacy_build_exactly() {
    // threads = 1 must be the pre-pipeline builder bit-for-bit.
    let records = tweet_records(10_000);
    let legacy = PolyFitSum::build(records.clone(), 25.0, PolyFitConfig::default()).unwrap();
    let piped =
        PolyFitSum::build_with(records, 25.0, PolyFitConfig::default(), &BuildOptions::default())
            .unwrap();
    assert_eq!(legacy.num_segments(), piped.num_segments());
    assert_eq!(legacy.to_bytes(), piped.to_bytes());
}

#[test]
fn query_batch_is_bitwise_identical_across_implementations() {
    let records = tweet_records(6_000);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let ranges = ranges_of(&keys, 300);

    let max_records = hki_records(6_000);

    let mut dynamic =
        DynamicPolyFitSum::new(records.clone(), 25.0, PolyFitConfig::default(), 1_000_000).unwrap();
    for i in 0..200 {
        dynamic.insert(keys[0] + i as f64 * 0.37, 2.0);
    }

    let methods: Vec<Box<dyn AggregateIndex>> = vec![
        Box::new(PolyFitSum::build(records.clone(), 25.0, PolyFitConfig::default()).unwrap()),
        Box::new(PolyFitMax::build(max_records.clone(), 40.0, PolyFitConfig::default()).unwrap()),
        Box::new(
            PolyFitMax::build_min(max_records.clone(), 40.0, PolyFitConfig::default()).unwrap(),
        ),
        Box::new(dynamic),
        Box::new(KeyCumulativeArray::new(&records)),
        Box::new(BPlusTree::new(&records)),
        Box::new(AggTree::new(&max_records)),
        Box::new(GuaranteedSum::with_abs_guarantee(
            records.clone(),
            100.0,
            PolyFitConfig::default(),
        )),
        Box::new(GuaranteedMax::with_abs_guarantee(
            max_records.clone(),
            40.0,
            PolyFitConfig::default(),
        )),
        Box::new(GuaranteedMin::with_abs_guarantee(
            max_records.clone(),
            40.0,
            PolyFitConfig::default(),
        )),
        Box::new(GuaranteedAvg::with_abs_guarantees(
            records.clone(),
            50.0,
            10.0,
            PolyFitConfig::default(),
        )),
        Box::new(CertifiedRelSum::new(
            PolyFitSum::build(records.clone(), 25.0, PolyFitConfig::default()).unwrap(),
            KeyCumulativeArray::new(&records),
            25.0,
            0.05,
        )),
    ];

    for m in &methods {
        let batch = m.query_batch(&ranges);
        assert_eq!(batch.len(), ranges.len());
        for (i, &(lq, uq)) in ranges.iter().enumerate() {
            let single = m.query(lq, uq);
            match (&batch[i], &single) {
                (Some(b), Some(s)) => {
                    assert_eq!(
                        b.value.to_bits(),
                        s.value.to_bits(),
                        "{} range ({lq}, {uq}]",
                        m.name()
                    );
                    assert_eq!(b.guarantee, s.guarantee, "{}", m.name());
                    assert_eq!(b.used_fallback, s.used_fallback, "{}", m.name());
                }
                (None, None) => {}
                other => panic!("{} range ({lq}, {uq}]: {other:?}", m.name()),
            }
        }
    }
}

#[test]
fn query_batch_through_pointer_delegation_keeps_override() {
    let records = tweet_records(4_000);
    let idx = PolyFitSum::build(records, 25.0, PolyFitConfig::default()).unwrap();
    let keys_ranges = vec![(100.0, 900.0), (0.5, 0.25), (-1e6, 1e6)];
    let direct = AggregateIndex::query_batch(&idx, &keys_ranges);
    let boxed: Box<dyn AggregateIndex> = Box::new(idx);
    let via_box = boxed.query_batch(&keys_ranges);
    let via_rc: std::rc::Rc<dyn AggregateIndex> = std::rc::Rc::from(boxed);
    let via_rc_batch = via_rc.query_batch(&keys_ranges);
    for ((a, b), c) in direct.iter().zip(&via_box).zip(&via_rc_batch) {
        assert_eq!(a.map(|x| x.value.to_bits()), b.map(|x| x.value.to_bits()));
        assert_eq!(a.map(|x| x.value.to_bits()), c.map(|x| x.value.to_bits()));
    }
}

#[test]
fn dynamic_parallel_rebuild_preserves_answers() {
    // A dynamic index with a parallel build option keeps the guarantee
    // through compaction rebuilds.
    let records = tweet_records(12_000);
    let delta = 30.0;
    let mut idx = DynamicPolyFitSum::with_options(
        records.clone(),
        delta,
        PolyFitConfig::default(),
        128,
        &BuildOptions::with_threads(4),
    )
    .unwrap();
    let mut shadow: Vec<(f64, f64)> = records.iter().map(|r| (r.key, r.measure)).collect();
    let lo = records[0].key;
    for i in 0..400 {
        let k = lo + 0.1 + i as f64 * 0.21;
        idx.insert(k, 3.0);
        shadow.push((k, 3.0));
    }
    assert!(idx.rebuilds() >= 1, "buffer limit 128 must have compacted");
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    for &(l, u) in ranges_of(&keys, 60).iter() {
        let truth: f64 = shadow.iter().filter(|(k, _)| *k > l && *k <= u).map(|(_, m)| m).sum();
        let err = (idx.query(l, u) - truth).abs();
        assert!(err <= 2.0 * delta + 1e-6, "({l}, {u}]: err {err}");
    }
}
