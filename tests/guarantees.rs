//! Cross-crate integration tests: end-to-end error-guarantee validation.
//!
//! Every guarantee the paper states (Problems 1 & 2, Lemmas 2–7) is checked
//! here on realistic synthetic workloads, for all four aggregates, with the
//! exact substrates as ground truth.

use polyfit_suite::data::{generate_hki, generate_tweet, query_intervals_from_keys};
use polyfit_suite::exact::dataset::{dedup_max, dedup_sum, sort_records, Record};
use polyfit_suite::exact::{AggTree, KeyCumulativeArray};
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::PolyFitMax;

fn tweet_records(n: usize) -> Vec<Record> {
    let mut rs: Vec<Record> =
        generate_tweet(n, 42).iter().map(|r| Record::new(r.key, r.measure)).collect();
    sort_records(&mut rs);
    dedup_sum(rs)
}

fn hki_records(n: usize) -> Vec<Record> {
    let mut rs: Vec<Record> =
        generate_hki(n, 42).iter().map(|r| Record::new(r.key, r.measure)).collect();
    sort_records(&mut rs);
    dedup_max(rs)
}

#[test]
fn count_absolute_guarantee_end_to_end() {
    let records = tweet_records(50_000);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    for eps_abs in [20.0, 100.0, 500.0] {
        let driver =
            GuaranteedSum::with_abs_guarantee(records.clone(), eps_abs, PolyFitConfig::default());
        for q in query_intervals_from_keys(&keys, 300, 7) {
            let err = (driver.query_abs(q.lo, q.hi) - exact.range_sum(q.lo, q.hi)).abs();
            assert!(err <= eps_abs + 1e-6, "eps {eps_abs}, ({}, {}]: err {err}", q.lo, q.hi);
        }
    }
}

#[test]
fn count_relative_guarantee_end_to_end() {
    let records = tweet_records(50_000);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let driver = GuaranteedSum::with_rel_guarantee(records.clone(), 50.0, PolyFitConfig::default());
    for eps_rel in [0.005, 0.01, 0.1] {
        let mut fallbacks = 0usize;
        for q in query_intervals_from_keys(&keys, 300, 11) {
            let ans = driver.query_rel(q.lo, q.hi, eps_rel);
            let truth = exact.range_sum(q.lo, q.hi);
            fallbacks += ans.used_fallback as usize;
            if truth > 0.0 {
                let rel = (ans.value - truth).abs() / truth;
                assert!(rel <= eps_rel + 1e-12, "eps {eps_rel}: rel {rel}");
            }
        }
        // Sanity: the certificate must both pass and fail sometimes on a
        // mixed workload (otherwise this test exercises only one path).
        assert!(fallbacks > 0, "eps {eps_rel}: no fallbacks at all");
        assert!(fallbacks < 300, "eps {eps_rel}: everything fell back");
    }
}

#[test]
fn max_absolute_guarantee_end_to_end() {
    let records = hki_records(30_000);
    let exact = AggTree::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    for eps_abs in [25.0, 100.0] {
        let driver =
            GuaranteedMax::with_abs_guarantee(records.clone(), eps_abs, PolyFitConfig::default());
        for q in query_intervals_from_keys(&keys, 200, 13) {
            let approx = driver.query_abs(q.lo, q.hi).expect("in-domain query");
            let truth = exact.range_max(q.lo, q.hi).expect("non-empty range");
            assert!(
                (approx - truth).abs() <= eps_abs + 1e-5,
                "eps {eps_abs}, [{}, {}]: approx {approx} truth {truth}",
                q.lo,
                q.hi
            );
        }
    }
}

#[test]
fn max_relative_guarantee_end_to_end() {
    let records = hki_records(30_000);
    let exact = AggTree::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    // HKI measures ≈ 20k–36k: δ = 100, eps = 0.01 → threshold 10100, which
    // every answer passes; δ = 500 → threshold 50500, which always fails.
    let pass_driver =
        GuaranteedMax::with_rel_guarantee(records.clone(), 100.0, PolyFitConfig::default());
    let fail_driver =
        GuaranteedMax::with_rel_guarantee(records.clone(), 500.0, PolyFitConfig::default());
    for q in query_intervals_from_keys(&keys, 150, 17) {
        let truth = exact.range_max(q.lo, q.hi).expect("non-empty");
        let a = pass_driver.query_rel(q.lo, q.hi, 0.01).expect("in-domain");
        assert!((a.value - truth).abs() / truth <= 0.01 + 1e-12);
        let b = fail_driver.query_rel(q.lo, q.hi, 0.01).expect("in-domain");
        assert!(b.used_fallback);
        assert_eq!(b.value, truth, "fallback must be exact");
    }
}

#[test]
fn min_queries_supported() {
    let records = hki_records(10_000);
    let mut sorted = records.clone();
    sort_records(&mut sorted);
    let exact = AggTree::new(&sorted);
    let idx = PolyFitMax::build_min(records, 50.0, PolyFitConfig::default()).expect("build");
    let keys: Vec<f64> = sorted.iter().map(|r| r.key).collect();
    for q in query_intervals_from_keys(&keys, 150, 19) {
        let approx = idx.query_min(q.lo, q.hi).expect("in-domain");
        let truth = exact.range_min(q.lo, q.hi).expect("non-empty");
        assert!((approx - truth).abs() <= 50.0 + 1e-5);
    }
}

#[test]
fn sum_with_weighted_measures() {
    // SUM (not COUNT): synthetic sensor-style weights.
    let mut records: Vec<Record> = (0..20_000)
        .map(|i| Record::new(i as f64 * 0.25, 1.0 + ((i * 37) % 101) as f64 / 10.0))
        .collect();
    sort_records(&mut records);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let driver = GuaranteedSum::with_abs_guarantee(records, 80.0, PolyFitConfig::default());
    for q in query_intervals_from_keys(&keys, 200, 23) {
        let err = (driver.query_abs(q.lo, q.hi) - exact.range_sum(q.lo, q.hi)).abs();
        assert!(err <= 80.0 + 1e-6);
    }
}

#[test]
fn degree_sweep_all_guarantees_hold() {
    let records = tweet_records(20_000);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let queries = query_intervals_from_keys(&keys, 100, 29);
    for degree in 1..=4usize {
        let driver = GuaranteedSum::with_abs_guarantee(
            records.clone(),
            60.0,
            PolyFitConfig::with_degree(degree),
        );
        for q in &queries {
            let err = (driver.query_abs(q.lo, q.hi) - exact.range_sum(q.lo, q.hi)).abs();
            assert!(err <= 60.0 + 1e-6, "degree {degree}: err {err}");
        }
    }
}

#[test]
fn simplex_backend_guarantees_hold() {
    // The literal Eq. 9 LP backend must produce equally valid indexes.
    let records = tweet_records(3_000);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let cfg = PolyFitConfig { backend: FitBackend::Simplex, ..Default::default() };
    let driver = GuaranteedSum::with_abs_guarantee(records, 50.0, cfg);
    for q in query_intervals_from_keys(&keys, 100, 31) {
        let err = (driver.query_abs(q.lo, q.hi) - exact.range_sum(q.lo, q.hi)).abs();
        assert!(err <= 50.0 + 1e-6);
    }
}
