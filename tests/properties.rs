//! Property-based tests (proptest) on the core invariants of the
//! reproduction — the paper's lemmas as machine-checked properties.

use proptest::prelude::*;

use polyfit_suite::exact::dataset::{dedup_sum, sort_records, Record};
use polyfit_suite::exact::{AggTree, KeyCumulativeArray};
use polyfit_suite::lp::{fit_minimax, FitBackend};
use polyfit_suite::poly::{max_on_interval, roots_in_interval, Polynomial};
use polyfit_suite::polyfit::config::PolyFitConfig;
use polyfit_suite::polyfit::function::TargetFunction;
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::segmentation::{
    dp_segmentation, fit_range, greedy_segmentation, ErrorMetric,
};

/// Strategy: a strictly increasing key vector with bounded values.
fn keyed_values(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.01f64..10.0, -100.0f64..100.0), 2..max_len).prop_map(|pairs| {
        let mut key = 0.0;
        let mut keys = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (gap, v) in pairs {
            key += gap;
            keys.push(key);
            values.push(v);
        }
        (keys, values)
    })
}

/// Strategy: positive-measure records with arbitrary (possibly duplicate)
/// keys.
fn records(max_len: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec((-1000.0f64..1000.0, 0.1f64..50.0), 2..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(k, m)| Record::new(k, m)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- fitting: Definition 2 / Lemma 1 -------------------------------

    /// The reported minimax error equals the brute-force max deviation.
    #[test]
    fn fit_error_is_true_max_residual((keys, values) in keyed_values(60), deg in 0usize..4) {
        let fit = fit_minimax(&keys, &values, deg, FitBackend::Exchange);
        let brute = keys.iter().zip(&values)
            .map(|(&k, &v)| (v - fit.poly.eval(k)).abs())
            .fold(0.0f64, f64::max);
        prop_assert!((fit.error - brute).abs() <= 1e-7 * brute.max(1.0));
    }

    /// Exchange and simplex find the same optimum (they solve the same LP).
    #[test]
    fn backends_agree((keys, values) in keyed_values(40), deg in 0usize..3) {
        let ex = fit_minimax(&keys, &values, deg, FitBackend::Exchange);
        let sx = fit_minimax(&keys, &values, deg, FitBackend::Simplex);
        prop_assert!(
            (ex.error - sx.error).abs() <= 1e-5 * ex.error.max(1.0),
            "exchange {} vs simplex {}", ex.error, sx.error
        );
    }

    /// Lemma 1: adding points never decreases the optimal fitting error.
    #[test]
    fn error_monotone_in_point_count((keys, values) in keyed_values(50), deg in 1usize..3) {
        let l = keys.len();
        let half = fit_minimax(&keys[..l / 2 + 1], &values[..l / 2 + 1], deg, FitBackend::Exchange);
        let full = fit_minimax(&keys, &values, deg, FitBackend::Exchange);
        prop_assert!(full.error >= half.error - 1e-7 * half.error.max(1.0));
    }

    // ---- segmentation: Theorem 1 ---------------------------------------

    /// GS segment count equals the DP optimum.
    #[test]
    fn gs_is_optimal((keys, values) in keyed_values(40), delta in 0.5f64..20.0) {
        let f = TargetFunction { keys, values };
        let cfg = PolyFitConfig::with_degree(1);
        let gs = greedy_segmentation(&f, &cfg, delta, ErrorMetric::DataPoint);
        let dp = dp_segmentation(&f, &cfg, delta, ErrorMetric::DataPoint);
        prop_assert_eq!(gs.len(), dp.len());
    }

    /// Every GS segment respects the δ constraint and they tile the input.
    #[test]
    fn gs_segments_valid((keys, values) in keyed_values(60), delta in 0.5f64..20.0) {
        let n = keys.len();
        let f = TargetFunction { keys, values };
        let cfg = PolyFitConfig::default();
        let segs = greedy_segmentation(&f, &cfg, delta, ErrorMetric::DataPoint);
        prop_assert_eq!(segs[0].start, 0);
        prop_assert_eq!(segs.last().unwrap().end, n - 1);
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end + 1, w[1].start);
        }
        for s in &segs {
            prop_assert!(s.certified_error <= delta + 1e-9);
        }
    }

    /// Continuous certification upper-bounds data-point certification.
    #[test]
    fn continuous_at_least_datapoint((keys, values) in keyed_values(40)) {
        let f = TargetFunction { keys, values };
        let n = f.keys.len();
        let (_, dp) = fit_range(&f, 0, n - 1, 2, FitBackend::Exchange, ErrorMetric::DataPoint);
        let (_, cont) = fit_range(&f, 0, n - 1, 2, FitBackend::Exchange, ErrorMetric::Continuous);
        prop_assert!(cont >= dp - 1e-7 * dp.max(1.0));
    }

    // ---- polynomial algebra --------------------------------------------

    /// Root isolation finds every constructed root inside the interval.
    #[test]
    fn roots_found(rs in proptest::collection::vec(-5.0f64..5.0, 1..5)) {
        let mut rs = rs;
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs.dedup_by(|a, b| (*a - *b).abs() < 1e-3);
        let p = Polynomial::from_roots(&rs);
        let found = roots_in_interval(&p, -6.0, 6.0);
        prop_assert_eq!(found.len(), rs.len(), "expected {:?}, found {:?}", rs, found);
        for (f, r) in found.iter().zip(&rs) {
            prop_assert!((f - r).abs() < 1e-6, "{} vs {}", f, r);
        }
    }

    /// The analytic interval maximum dominates dense sampling.
    #[test]
    fn extrema_dominate_samples(coeffs in proptest::collection::vec(-3.0f64..3.0, 1..6)) {
        let p = Polynomial::new(coeffs);
        let m = max_on_interval(&p, -2.0, 2.0);
        for i in 0..=400 {
            let x = -2.0 + 4.0 * i as f64 / 400.0;
            prop_assert!(p.eval(x) <= m.value + 1e-9 * m.value.abs().max(1.0));
        }
    }

    // ---- exact substrates ------------------------------------------------

    /// KCA range sums equal brute force on arbitrary record sets.
    #[test]
    fn kca_matches_brute(mut rs in records(80), l in -1000.0f64..1000.0, span in 0.0f64..2000.0) {
        sort_records(&mut rs);
        let rs = dedup_sum(rs);
        let kca = KeyCumulativeArray::new(&rs);
        let u = l + span;
        let brute: f64 = rs.iter().filter(|r| r.key > l && r.key <= u).map(|r| r.measure).sum();
        prop_assert!((kca.range_sum(l, u) - brute).abs() < 1e-7);
    }

    /// AggTree record-range max equals brute force.
    #[test]
    fn aggtree_matches_brute(mut rs in records(80), l in -1000.0f64..1000.0, span in 0.0f64..2000.0) {
        sort_records(&mut rs);
        let tree = AggTree::new(&rs);
        let u = l + span;
        let brute = rs.iter()
            .filter(|r| r.key >= l && r.key <= u)
            .map(|r| r.measure)
            .fold(f64::NEG_INFINITY, f64::max);
        let expected = (brute > f64::NEG_INFINITY).then_some(brute);
        prop_assert_eq!(tree.range_max_records(l, u), expected);
    }

    // ---- end-to-end guarantees (Problem 1) -------------------------------

    /// The absolute SUM guarantee holds for arbitrary data and key-endpoint
    /// queries.
    #[test]
    fn sum_guarantee_holds(mut rs in records(120), eps in 5.0f64..100.0, qa in 0usize..120, qb in 0usize..120) {
        sort_records(&mut rs);
        let rs = dedup_sum(rs);
        prop_assume!(rs.len() >= 2);
        let exact = KeyCumulativeArray::new(&rs);
        let driver = GuaranteedSum::with_abs_guarantee(rs.clone(), eps, PolyFitConfig::default());
        let (a, b) = (qa % rs.len(), qb % rs.len());
        let (l, u) = (rs[a.min(b)].key, rs[a.max(b)].key);
        let err = (driver.query_abs(l, u) - exact.range_sum(l, u)).abs();
        prop_assert!(err <= eps + 1e-6, "err {} eps {}", err, eps);
    }

    /// The absolute MAX guarantee holds for arbitrary *real* endpoints
    /// (continuous certification).
    #[test]
    fn max_guarantee_holds(mut rs in records(100), eps in 2.0f64..50.0, l in -1000.0f64..1000.0, span in 0.1f64..2000.0) {
        sort_records(&mut rs);
        let rs = polyfit_suite::exact::dataset::dedup_max(rs);
        prop_assume!(rs.len() >= 2);
        let exact = AggTree::new(&rs);
        let driver = GuaranteedMax::with_abs_guarantee(rs.clone(), eps, PolyFitConfig::default());
        let u = l + span;
        match (driver.query_abs(l, u), exact.range_max(l, u)) {
            (Some(approx), Some(truth)) => {
                prop_assert!((approx - truth).abs() <= eps + 1e-5,
                    "approx {} truth {} eps {}", approx, truth, eps);
            }
            (None, None) => {}
            (a, t) => prop_assert!(false, "presence mismatch: {:?} vs {:?}", a, t),
        }
    }

    /// The relative SUM guarantee holds (certified or exact fallback).
    #[test]
    fn rel_guarantee_holds(mut rs in records(100), eps_rel in 0.01f64..0.3, qa in 0usize..100, qb in 0usize..100) {
        sort_records(&mut rs);
        let rs = dedup_sum(rs);
        prop_assume!(rs.len() >= 2);
        let exact = KeyCumulativeArray::new(&rs);
        let driver = GuaranteedSum::with_rel_guarantee(rs.clone(), 10.0, PolyFitConfig::default());
        let (a, b) = (qa % rs.len(), qb % rs.len());
        let (l, u) = (rs[a.min(b)].key, rs[a.max(b)].key);
        let ans = driver.query_rel(l, u, eps_rel);
        let truth = exact.range_sum(l, u);
        if truth > 0.0 {
            prop_assert!((ans.value - truth).abs() / truth <= eps_rel + 1e-12);
        } else {
            prop_assert_eq!(ans.value, 0.0);
        }
    }
}
