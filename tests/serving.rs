//! Property tests for the concurrent serving layer: interleaved
//! submit/update streams from multiple client threads, verified
//! bitwise against a quiesced-index oracle.
//!
//! The dynamic loop's provenance makes exact verification possible even
//! though compaction interleaves with serving: every [`Served`] answer
//! carries `(updates_applied, rebuilds)`, and the server records the
//! update count at which each rebuild was staged. Replaying the update
//! prefix, staging at the recorded points, and swapping exactly
//! `rebuilds` of them reproduces the served index state bit-for-bit —
//! an in-flight (staged but unswapped) rebuild is bitwise-transparent
//! (the PR 3 compaction-boundary invariant this suite extends), and a
//! swapped rebuild's state is a deterministic function of its staged
//! content (stepped == blocking).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use polyfit_suite::exact::dataset::Record;
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::wal as pwal;
use polyfit_suite::polyfit::{DynamicServeConfig, PolyFitSum, ServeConfig};

/// One step of the client workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(f64, f64),
    Delete(f64, f64),
    /// Query endpoint *selectors* — mapped to concrete (possibly
    /// degenerate) bounds by [`endpoints_of`].
    Query(usize, usize),
}

/// Map selector pairs to concrete query bounds, covering proper,
/// reversed, out-of-domain, and non-finite shapes.
fn endpoints_of(sa: usize, sb: usize) -> (f64, f64) {
    let coord = |s: usize| -200.0 + (s % 900) as f64 * 0.5;
    match sa % 11 {
        0 => (coord(sb), coord(sa)),     // frequently reversed
        1 => (f64::NAN, coord(sb)),      // non-finite low
        2 => (coord(sb), f64::INFINITY), // non-finite high
        3 => (coord(sa), coord(sa)),     // degenerate
        _ => {
            let (a, b) = (coord(sa), coord(sb) + 120.0);
            (a.min(b), a.max(b).max(a)) // proper
        }
    }
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..4, -150.0f64..150.0, 0.25f64..6.0, 0usize..1000, 0usize..1000),
        8..max_ops,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, k, m, sa, sb)| match kind {
                0 | 1 => Op::Insert(k, m),
                2 => Op::Delete(k, m),
                _ => Op::Query(sa, sb),
            })
            .collect()
    })
}

fn base_records(n: usize) -> Vec<Record> {
    (0..n).map(|i| Record::new(i as f64 * 0.5 - 100.0, 1.0 + (i % 3) as f64)).collect()
}

fn capped_config() -> PolyFitConfig {
    PolyFitConfig { max_segment_len: Some(96), ..PolyFitConfig::default() }
}

/// Replay the update prefix with the recorded compaction history: stage
/// at each logged point, swap the first `swaps`, skip the rest. The
/// result answers bit-for-bit like the serving loop's index did at
/// provenance `(upto, swaps)`.
fn replay_oracle(
    delta: f64,
    limit: usize,
    updates: &[Update],
    stage_log: &[u64],
    upto: u64,
    swaps: u64,
) -> DynamicPolyFitSum {
    let mut o = DynamicPolyFitSum::new(base_records(600), delta, capped_config(), limit).unwrap();
    o.set_step_budget(0);
    let mut si = 0usize;
    for (i, &u) in updates.iter().take(upto as usize).enumerate() {
        match u {
            Update::Insert { key, measure } => o.insert(key, measure),
            Update::Delete { key, measure } => o.delete(key, measure),
        }
        while si < stage_log.len() && stage_log[si] <= (i + 1) as u64 {
            if (si as u64) < swaps {
                assert!(o.begin_compaction(), "logged stage {si} must have work");
                o.compact_now();
            }
            si += 1;
        }
    }
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The dynamic loop under interleaved multi-client traffic: one
    /// writer thread streams updates while two client threads submit
    /// queries concurrently; every served answer must equal a direct
    /// query on the quiesced replay of its provenance point — including
    /// answers served while a compaction was staged or mid-rebuild.
    #[test]
    fn served_answers_match_quiesced_replay(
        ops in ops_strategy(48),
        delta in 4.0f64..20.0,
        limit in 4usize..16,
    ) {
        let index =
            DynamicPolyFitSum::new(base_records(600), delta, capped_config(), limit).unwrap();
        let server = polyfit_suite::polyfit::DynamicServer::start(
            index,
            DynamicServeConfig {
                deadline: Duration::from_micros(30),
                max_batch: 8,
                // Tiny budget: rebuilds span many idle gaps, so queries
                // regularly land mid-compaction.
                compaction_budget: 48,
            },
        );
        // Two query clients fed round-robin over channels — queries
        // interleave with the writer from genuinely distinct threads.
        let mut senders = Vec::new();
        let mut clients = Vec::new();
        for _ in 0..2 {
            let (tx, rx) = mpsc::channel::<(f64, f64)>();
            let handle = server.handle();
            senders.push(tx);
            clients.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for (lo, hi) in rx {
                    seen.push((lo, hi, handle.query_served(lo, hi)));
                }
                seen
            }));
        }
        let writer = server.handle();
        let mut updates: Vec<Update> = Vec::new();
        let mut qi = 0usize;
        for op in &ops {
            match *op {
                Op::Insert(k, m) => {
                    writer.insert(k, m).unwrap();
                    updates.push(Update::Insert { key: k, measure: m });
                }
                Op::Delete(k, m) => {
                    writer.delete(k, m).unwrap();
                    updates.push(Update::Delete { key: k, measure: m });
                }
                Op::Query(sa, sb) => {
                    let (lo, hi) = endpoints_of(sa, sb);
                    senders[qi % senders.len()].send((lo, hi)).unwrap();
                    qi += 1;
                }
            }
        }
        drop(senders);
        let mut observed = Vec::new();
        for c in clients {
            observed.extend(c.join().expect("client thread panicked"));
        }
        let stage_log = server.stage_log();
        let (final_index, _stats) = server.shutdown();

        for (i, &(lo, hi, served)) in observed.iter().enumerate() {
            let oracle = replay_oracle(
                delta,
                limit,
                &updates,
                &stage_log,
                served.updates_applied,
                served.rebuilds,
            );
            let expect = AggregateIndex::query(&oracle, lo, hi);
            let got = served.answer;
            prop_assert_eq!(
                got.map(|a| a.value.to_bits()),
                expect.map(|a| a.value.to_bits()),
                "query {} ({}, {}] at provenance ({}, {}): served {:?} vs oracle {:?}",
                i, lo, hi, served.updates_applied, served.rebuilds, got, expect
            );
        }
        // The handed-back index equals the full replay (all updates, all
        // completed swaps), so the serving session leaves a state any
        // offline consumer can reproduce.
        let oracle = replay_oracle(
            delta,
            limit,
            &updates,
            &stage_log,
            updates.len() as u64,
            final_index.rebuilds() as u64,
        );
        prop_assert_eq!(final_index.buffered(), oracle.buffered());
        for s in 0..30usize {
            let (lo, hi) = (s as f64 * 12.0 - 150.0, s as f64 * 12.0 + 60.0);
            prop_assert_eq!(
                final_index.query(lo, hi).to_bits(),
                oracle.query(lo, hi).to_bits(),
                "final state probe {}", s
            );
        }
    }

    /// The read-only thread-per-core server: concurrent clients over a
    /// shared static index get answers bitwise-identical to direct
    /// `query` calls, for proper and degenerate bounds alike.
    #[test]
    fn static_server_matches_direct_queries(
        selectors in proptest::collection::vec((0usize..1000, 0usize..1000), 4..40),
        workers in 1usize..4,
    ) {
        let index: SharedIndex = Arc::new(
            PolyFitSum::build(base_records(800), 10.0, capped_config()).unwrap(),
        );
        let server = polyfit_suite::polyfit::Server::start(
            Arc::clone(&index),
            ServeConfig {
                workers,
                deadline: Duration::from_micros(40),
                max_batch: 8,
            },
        );
        let probes: Vec<(f64, f64)> =
            selectors.iter().map(|&(sa, sb)| endpoints_of(sa, sb)).collect();
        let mut clients = Vec::new();
        for c in 0..2usize {
            let handle = server.handle();
            let probes = probes.clone();
            clients.push(std::thread::spawn(move || {
                probes
                    .into_iter()
                    .skip(c)
                    .map(|(lo, hi)| (lo, hi, handle.query_served(lo, hi)))
                    .collect::<Vec<_>>()
            }));
        }
        for c in clients {
            for (lo, hi, served) in c.join().expect("client thread panicked") {
                let direct = index.query(lo, hi);
                prop_assert_eq!(
                    served.answer.map(|a| a.value.to_bits()),
                    direct.map(|a| a.value.to_bits()),
                    "({}, {}]", lo, hi
                );
                prop_assert_eq!(served.updates_applied, 0u64);
                prop_assert!(served.batch_len >= 1);
            }
        }
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharded server under interleaved multi-client traffic, with
    /// auto-splits racing compaction: one writer streams key-routed
    /// updates while two client threads submit queries concurrently —
    /// point ranges, boundary-crossing ranges, and full-domain scans
    /// alike. Every served answer carries its per-shard provenance
    /// vector, and every one must be bitwise-identical to the
    /// [`ShardedOracle`]'s offline replay: per shard, rebuild the exact
    /// index state at `(updates_applied, rebuilds)` (through the
    /// split lineage), re-run the clipped sub-query, and compose in the
    /// served order.
    #[test]
    fn sharded_answers_match_per_shard_replay(
        ops in ops_strategy(56),
        delta in 4.0f64..20.0,
        shards in 1usize..4,
    ) {
        let cfg = ShardConfig {
            shards,
            deadline: Duration::from_micros(30),
            max_batch: 8,
            // Tiny budget + buffer: compaction stages often and spans
            // many idle gaps, so splits regularly race a live rebuild.
            compaction_budget: 48,
            buffer_limit: 12,
            split_threshold: 340,
            max_shards: 6,
            record_history: true,
            ..ShardConfig::default()
        };
        let server =
            ShardedServer::start(base_records(600), delta, capped_config(), cfg).unwrap();
        let mut senders = Vec::new();
        let mut clients = Vec::new();
        for _ in 0..2 {
            let (tx, rx) = mpsc::channel::<(f64, f64)>();
            let handle = server.handle();
            senders.push(tx);
            clients.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for (lo, hi) in rx {
                    seen.push((lo, hi, handle.query_served(lo, hi)));
                }
                seen
            }));
        }
        let writer = server.handle();
        let mut qi = 0usize;
        for op in &ops {
            match *op {
                Op::Insert(k, m) => writer.insert(k, m).unwrap(),
                Op::Delete(k, m) => writer.delete(k, m).unwrap(),
                Op::Query(sa, sb) => {
                    let (lo, hi) = endpoints_of(sa, sb);
                    senders[qi % senders.len()].send((lo, hi)).unwrap();
                    qi += 1;
                }
            }
        }
        drop(senders);
        let mut observed = Vec::new();
        for c in clients {
            observed.extend(c.join().expect("client thread panicked"));
        }
        // Deterministic boundary probes against the settled layout:
        // inside one shard, across each adjacent boundary, and the full
        // domain (all shards), so every scatter-gather width is checked
        // even when the random stream missed one.
        let stats = server.stats();
        for w in stats.bounds.windows(1) {
            observed.push((w[0] - 4.0, w[0] + 4.0, writer.query_served(w[0] - 4.0, w[0] + 4.0)));
        }
        for &(lo, hi) in
            &[(-40.0, 40.0), (-250.0, 300.0), (f64::NEG_INFINITY, 0.0), (150.0, -150.0)]
        {
            observed.push((lo, hi, writer.query_served(lo, hi)));
        }
        // Wait-free snapshot path: answers from published snapshots must
        // replay through the same oracle (snapshots trail the live shard
        // only in provenance, never in reproducibility).
        let snap = writer.snapshot_query(-250.0, 300.0);
        let oracle = server.oracle();
        prop_assert!(!snap.poisoned);
        prop_assert!(oracle.matches(&snap), "snapshot path diverged: {:?}", snap);
        for (i, (lo, hi, served)) in observed.iter().enumerate() {
            prop_assert!(!served.poisoned, "query {} ({}, {}] poisoned", i, lo, hi);
            prop_assert!(
                oracle.matches(served),
                "query {} ({}, {}]: served {:?} vs oracle {:?}",
                i, lo, hi, served.answer, oracle.expected(served)
            );
        }
        // Epoch-reclamation safety: once the fleet quiesces and readers
        // unpin, retired snapshots must drain from limbo — each shard
        // may hold at most its current snapshot plus one awaiting the
        // final grace period.
        let final_stats = server.shutdown();
        prop_assert!(
            final_stats.limbo <= final_stats.shards.len() * 2,
            "unreclaimed limbo after quiesce: {:?}", final_stats
        );
        prop_assert_eq!(final_stats.layout_version, stats.layout_version,
            "no rebalance may run after shutdown began");
    }
}

// ---------------------------------------------------------------------------
// Durability: kill-and-recover, torn tails, ±0.0 across the recovery boundary
// ---------------------------------------------------------------------------

/// Fresh per-case WAL directory (proptest reruns cases; stale files from
/// an earlier shrink iteration must never leak into the next one).
fn fresh_wal_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("polyfit-serving-wal-tests").join(format!("{tag}-{n}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bitwise query-equality probe grid: proper, degenerate, and
/// domain-spanning ranges over the workload's key window.
fn assert_bitwise_equal(rec: &DynamicPolyFitSum, live: &DynamicPolyFitSum) -> Result<(), String> {
    for s in 0..40 {
        let lo = -170.0 + s as f64 * 8.5;
        for span in [0.0, 5.5, 63.0, 400.0] {
            let (r, l) = (rec.query(lo, lo + span), live.query(lo, lo + span));
            if r.to_bits() != l.to_bits() {
                return Err(format!("({lo}, {}]: recovered {r} vs live {l}", lo + span));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill-and-recover at an arbitrary crash point — including while a
    /// shadow compaction is staged or mid-rebuild. Every update is
    /// journaled durably before it folds in ([`SyncPolicy::EveryUpdate`]),
    /// so the crash loses nothing acked: the recovered index must answer
    /// bitwise-identically to the never-crashed instance, with the same
    /// compaction lineage (swaps either checkpointed before the crash or
    /// still staged — and a staged rebuild is bitwise-transparent).
    #[test]
    fn recovery_is_bitwise_equal_at_any_crash_point(
        ops in proptest::collection::vec(
            (0u8..2, -150.0f64..150.0, 0.25f64..6.0), 8..64),
        crash_pct in 0usize..=100,
        stride in 4usize..12,
        partial_tail in 0u8..2,
    ) {
        let dir = fresh_wal_dir("crash");
        let crash = ops.len() * crash_pct / 100;
        let mut live =
            DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 10).unwrap();
        live.set_step_budget(0);
        live.attach_wal(&dir, "t", SyncPolicy::EveryUpdate, 0).unwrap();
        for (i, &(ins, k, m)) in ops[..crash].iter().enumerate() {
            if ins == 1 {
                live.insert(k, m);
            } else {
                live.delete(k, m);
            }
            // Periodic full swaps: each one checkpoints + truncates the
            // log, so recovery exercises checkpoint-plus-tail replay.
            if i % stride == stride - 1 && live.begin_compaction() {
                live.compact_now();
            }
        }
        if partial_tail == 1 && live.begin_compaction() {
            // Crash mid-compaction: a few bounded steps, then die. If the
            // rebuild happened to finish, its swap checkpointed (covered
            // below either way).
            live.step_compaction(3);
        }
        // "Kill" = recover from disk while the live instance still runs:
        // the never-crashed state is the oracle.
        let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        prop_assert_eq!(report.head_seq, crash as u64, "journal covers every acked update");
        prop_assert_eq!(report.truncated_bytes, 0, "clean log has no torn tail");
        prop_assert_eq!(rec.rebuilds(), live.rebuilds(), "compaction lineage");
        prop_assert_eq!(rec.base_len(), live.base_len(), "compacted base");
        if live.compaction().is_none() {
            // (A staged-but-unswapped rebuild holds its entries in
            // `pending`, which the buffer count doesn't see.)
            prop_assert_eq!(rec.buffered(), live.buffered(), "exact delta buffer");
        }
        if let Err(msg) = assert_bitwise_equal(&rec, &live) {
            prop_assert!(false, "crash at {}/{}: {}", crash, ops.len(), msg);
        }
    }

    /// Torn tails: chop (or corrupt) bytes at the end of the log, as a
    /// crash mid-write would. Recovery must land on the last checksummed
    /// prefix — bitwise-equal to replaying exactly the surviving updates —
    /// and physically truncate the torn bytes so a second recovery is
    /// clean and identical.
    #[test]
    fn torn_tail_recovers_to_last_checksummed_prefix(
        n_ops in 6usize..40,
        cut in 1usize..200,
        flip in 0u8..2,
    ) {
        let dir = fresh_wal_dir("torn");
        let mut live =
            DynamicPolyFitSum::new(base_records(200), 8.0, capped_config(), 1_000_000).unwrap();
        live.set_step_budget(0);
        live.attach_wal(&dir, "t", SyncPolicy::Batch, 0).unwrap();
        let ops: Vec<(f64, f64)> =
            (0..n_ops).map(|i| (i as f64 * 1.7 - 30.0, 1.0 + (i % 4) as f64)).collect();
        for &(k, m) in &ops {
            live.insert(k, m);
        }
        live.detach_wal().unwrap(); // final group commit, close the handle
        let log = pwal::log_path(&dir, "t");
        let bytes = std::fs::read(&log).unwrap();
        // Damage lands relative to the end of the *valid prefix* — the
        // file extends past it with preallocated zeros, which are not
        // where a torn write can land. Keep the 12-byte header; damage
        // may wipe every frame.
        let valid = pwal::scan_wal(&log).unwrap().valid_len as usize;
        let cut = cut.min(valid - 12);
        if flip == 1 {
            // Corrupt in place: the checksum must cut the scan at the
            // damaged frame even though the file length looks fine.
            let mut damaged = bytes.clone();
            damaged[valid - cut] ^= 0x5a;
            std::fs::write(&log, damaged).unwrap();
        } else {
            std::fs::write(&log, &bytes[..valid - cut]).unwrap();
        }
        let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        prop_assert!(report.head_seq < n_ops as u64, "damage must cost at least one record");
        // The recovered state is exactly the surviving prefix.
        let mut oracle =
            DynamicPolyFitSum::new(base_records(200), 8.0, capped_config(), 1_000_000).unwrap();
        oracle.set_step_budget(0);
        for &(k, m) in ops.iter().take(report.head_seq as usize) {
            oracle.insert(k, m);
        }
        prop_assert_eq!(rec.buffered(), oracle.buffered());
        if let Err(msg) = assert_bitwise_equal(&rec, &oracle) {
            prop_assert!(false, "prefix of {} ops: {}", report.head_seq, msg);
        }
        // Truncate-at-corruption is physical: recovering again finds a
        // clean log with the same head.
        let (rec2, report2) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        prop_assert_eq!(report2.truncated_bytes, 0, "first recovery cut the torn tail");
        prop_assert_eq!(report2.head_seq, report.head_seq);
        prop_assert_eq!(rec2.buffered(), rec.buffered());
        if let Err(msg) = assert_bitwise_equal(&rec2, &rec) {
            prop_assert!(false, "second recovery diverged: {}", msg);
        }
    }
}

/// `-0.0` and `+0.0` are one key; the journal normalizes before writing
/// (and the decoder re-normalizes defensively), so a mixed ±0.0 stream
/// folds bitwise-identically on both sides of a recovery boundary — even
/// when a compaction checkpoint lands mid-stream.
#[test]
fn mixed_zero_streams_recover_bitwise() {
    let dir = fresh_wal_dir("zeros");
    let records: Vec<Record> = (-6..6).map(|i| Record::new(i as f64, 1.0)).collect();
    let mut live =
        DynamicPolyFitSum::new(records.clone(), 2.0, PolyFitConfig::default(), 4).unwrap();
    live.set_step_budget(0);
    live.attach_wal(&dir, "t", SyncPolicy::EveryUpdate, 0).unwrap();
    live.insert(-0.0, 5.0);
    live.insert(0.0, 2.5);
    live.delete(-0.0, 1.0);
    live.insert(1.5, -0.0); // negative-zero *measure* is journaled as-is
                            // Compaction boundary mid-stream: the ±0.0 entries so far fold into
                            // the checkpointed base; the rest replay from the log tail.
    assert!(live.begin_compaction());
    live.compact_now();
    live.delete(0.0, 5.0);
    live.insert(-0.0, 3.25);
    live.delete(-1.0, 0.5);
    let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
    assert_eq!(report.head_seq, 7);
    assert_eq!(rec.rebuilds(), live.rebuilds());
    assert_eq!(rec.buffered(), live.buffered());
    // Bounds at ±0.0 and ranges covering the zero key answer bitwise
    // alike, with either sign of zero as an endpoint.
    for (lo, hi) in
        [(-0.0, 2.0), (0.0, 2.0), (-2.0, -0.0), (-2.0, 0.0), (-6.0, 6.0), (-0.5, 0.5), (0.0, 0.0)]
    {
        assert_eq!(
            rec.query(lo, hi).to_bits(),
            live.query(lo, hi).to_bits(),
            "({lo}, {hi}] diverged after recovery"
        );
    }
    // The strongest form: the serialized states are byte-identical.
    assert_eq!(rec.to_bytes(), live.to_bytes(), "recovered PFD2 bytes differ");
}

// ---------------------------------------------------------------------------
// Streaming aggregates: sliding windows and the AVG/MIN drivers
// ---------------------------------------------------------------------------

/// A sliding-window SUM stream through the dynamic serve loop: each step
/// inserts at the leading edge, deletes the trailing edge once the
/// window is full, and periodically queries exactly the live window.
/// Every answer must replay bitwise at its provenance — the window
/// bookkeeping (delete-on-slide) rides the same update queue as any
/// other write, so a lagging drain or mid-window compaction must never
/// smear adjacent windows together.
#[test]
fn sliding_window_sum_stream_matches_quiesced_replay() {
    let key_of = |t: usize| t as f64 * 0.5 - 90.0;
    let measure_of = |t: usize| 1.0 + (t % 5) as f64 * 0.25;
    const WINDOW: usize = 40;
    let index = DynamicPolyFitSum::new(base_records(600), 8.0, capped_config(), 10).unwrap();
    let server = polyfit_suite::polyfit::DynamicServer::start(
        index,
        DynamicServeConfig {
            deadline: Duration::from_micros(30),
            max_batch: 8,
            compaction_budget: 48,
        },
    );
    let writer = server.handle();
    let mut updates: Vec<Update> = Vec::new();
    let mut observed = Vec::new();
    for t in 0..130usize {
        let (k, m) = (key_of(t), measure_of(t));
        writer.insert(k, m).unwrap();
        updates.push(Update::Insert { key: k, measure: m });
        if t >= WINDOW {
            let (ok, om) = (key_of(t - WINDOW), measure_of(t - WINDOW));
            writer.delete(ok, om).unwrap();
            updates.push(Update::Delete { key: ok, measure: om });
        }
        if t % 5 == 4 {
            // The half-open window (key(t-WINDOW), key(t)] — exactly the
            // live entries, trailing edge excluded.
            let lo = if t >= WINDOW { key_of(t - WINDOW) } else { f64::NEG_INFINITY };
            observed.push((lo, key_of(t), writer.query_served(lo, key_of(t))));
        }
    }
    let stage_log = server.stage_log();
    let (final_index, _stats) = server.shutdown();
    for (i, &(lo, hi, served)) in observed.iter().enumerate() {
        assert!(!served.poisoned, "window {i} poisoned");
        let oracle =
            replay_oracle(8.0, 10, &updates, &stage_log, served.updates_applied, served.rebuilds);
        let expect = AggregateIndex::query(&oracle, lo, hi);
        assert_eq!(
            served.answer.map(|a| a.value.to_bits()),
            expect.map(|a| a.value.to_bits()),
            "window {i} ({lo}, {hi}] at provenance ({}, {})",
            served.updates_applied,
            served.rebuilds
        );
    }
    let oracle = replay_oracle(
        8.0,
        10,
        &updates,
        &stage_log,
        updates.len() as u64,
        final_index.rebuilds() as u64,
    );
    assert_eq!(final_index.buffered(), oracle.buffered());
    assert_bitwise_equal(&final_index, &oracle).unwrap();
}

/// The AVG and MIN drivers behind the static serve loop: any
/// [`AggregateIndex`] serves through the same batching machinery, and
/// the answers must be bitwise-identical to direct queries — including
/// AVG's certified error bound and MIN over degenerate/reversed bounds.
#[test]
fn avg_and_min_drivers_serve_bitwise() {
    let drivers: Vec<SharedIndex> = vec![
        Arc::new(GuaranteedAvg::with_abs_guarantees(base_records(500), 4.0, 4.0, capped_config())),
        Arc::new(GuaranteedMin::with_abs_guarantee(base_records(500), 4.0, capped_config())),
    ];
    for index in drivers {
        let server = polyfit_suite::polyfit::Server::start(
            Arc::clone(&index),
            ServeConfig { workers: 2, deadline: Duration::from_micros(40), max_batch: 8 },
        );
        let handle = server.handle();
        for s in 0..60usize {
            let (lo, hi) = endpoints_of(s * 17, s * 23 + 5);
            let served = handle.query_served(lo, hi);
            let direct = index.query(lo, hi);
            assert_eq!(
                served.answer.map(|a| a.value.to_bits()),
                direct.map(|a| a.value.to_bits()),
                "{}/{:?} ({lo}, {hi}]",
                index.name(),
                index.kind()
            );
        }
        server.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Adversarial key distributions through sharded serving
// ---------------------------------------------------------------------------

/// Every record and every update on ONE key: the split heuristic has no
/// legal boundary (a shard cannot be cut inside a key), so the server
/// must decline to split — not spin, not carve an empty shard — while
/// measure-folding keeps every degenerate, covering, and missing-key
/// query bitwise against the oracle.
#[test]
fn all_duplicate_keys_serve_and_decline_to_split() {
    let records: Vec<Record> = (0..600).map(|i| Record::new(7.0, 1.0 + (i % 4) as f64)).collect();
    let cfg = ShardConfig {
        shards: 1,
        deadline: Duration::from_micros(30),
        max_batch: 8,
        compaction_budget: 48,
        buffer_limit: 12,
        split_threshold: 340, // far exceeded — but there is nothing to cut
        max_shards: 6,
        record_history: true,
        ..ShardConfig::default()
    };
    let server = ShardedServer::start(records, 8.0, capped_config(), cfg).unwrap();
    let writer = server.handle();
    let mut observed = Vec::new();
    for i in 0..60usize {
        if i % 4 == 3 {
            writer.delete(7.0, 0.5).unwrap();
        } else {
            writer.insert(7.0, 1.0 + (i % 3) as f64).unwrap();
        }
        if i % 6 == 0 {
            for &(lo, hi) in
                &[(7.0, 7.0), (6.0, 8.0), (f64::NEG_INFINITY, f64::INFINITY), (8.0, 9.0)]
            {
                observed.push((lo, hi, writer.query_served(lo, hi)));
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.shards.len(), 1, "a single key must never split");
    let oracle = server.oracle();
    for (i, (lo, hi, served)) in observed.iter().enumerate() {
        assert!(!served.poisoned, "query {i} ({lo}, {hi}] poisoned");
        assert!(
            oracle.matches(served),
            "query {i} ({lo}, {hi}]: {:?} vs {:?}",
            served.answer,
            oracle.expected(served)
        );
    }
    server.shutdown();
}

/// Keys tiled one ULP apart: shard boundaries, split points, and query
/// clipping all land *between* adjacent representable doubles. Splits
/// fire under live traffic, and answers — degenerate single-ULP probes,
/// windows spanning a boundary, and full-domain scans — must stay
/// bitwise against the per-shard replay oracle.
#[test]
fn one_ulp_key_tiling_shards_and_serves_bitwise() {
    let mut keys = Vec::with_capacity(600);
    let mut k = 1.0f64;
    for _ in 0..600 {
        keys.push(k);
        k = k.next_up();
    }
    let records: Vec<Record> = keys.iter().map(|&k| Record::new(k, 2.0)).collect();
    let cfg = ShardConfig {
        shards: 1,
        deadline: Duration::from_micros(30),
        max_batch: 8,
        compaction_budget: 48,
        buffer_limit: 12,
        split_threshold: 340, // 600 records: splits must fire
        max_shards: 6,
        record_history: true,
        ..ShardConfig::default()
    };
    let server = ShardedServer::start(records, 8.0, capped_config(), cfg).unwrap();
    let writer = server.handle();
    let mut observed = Vec::new();
    for i in 0..80usize {
        let key = keys[(i * 37) % keys.len()];
        if i % 5 == 2 {
            writer.delete(key, 0.25).unwrap();
        } else {
            writer.insert(key, 1.5).unwrap();
        }
        if i % 4 == 0 {
            let a = keys[(i * 13) % keys.len()];
            let b = keys[(i * 29) % keys.len()];
            observed.push((a, a, writer.query_served(a, a))); // one-ULP degenerate
            let (lo, hi) = (a.min(b), a.max(b));
            observed.push((lo, hi, writer.query_served(lo, hi)));
        }
    }
    // Boundary-straddling probes against the settled layout: one ULP to
    // either side of every shard bound.
    let stats = server.stats();
    for &b in &stats.bounds {
        observed.push((
            b.next_down(),
            b.next_up(),
            writer.query_served(b.next_down(), b.next_up()),
        ));
    }
    observed.push((
        f64::NEG_INFINITY,
        f64::INFINITY,
        writer.query_served(f64::NEG_INFINITY, f64::INFINITY),
    ));
    assert!(stats.shards.len() > 1, "the tiling must have split under load");
    let oracle = server.oracle();
    for (i, (lo, hi, served)) in observed.iter().enumerate() {
        assert!(!served.poisoned, "query {i} ({lo}, {hi}] poisoned");
        assert!(
            oracle.matches(served),
            "query {i} ({lo}, {hi}]: {:?} vs {:?}",
            served.answer,
            oracle.expected(served)
        );
    }
    server.shutdown();
}
