//! Failpoint-driven fault-injection harness: schedule-exploration tests.
//!
//! Only compiled with `--features failpoints`. Every test follows the
//! same discipline as `tests/serving.rs`: run a workload under an
//! injected fault schedule, then hold the observed answers (and any
//! recovered state) **bitwise-equal** to a quiesced oracle replay — or
//! to a typed fail-stop error. Faults may change *when* things happen
//! (a delayed swap, an oversized batch, a re-routed push); they must
//! never change *what* an acknowledged answer is.
//!
//! The failpoint registry is process-global, so every test serializes
//! on [`serial`]. Schedules derive deterministically from a seed
//! ([`Schedule::random`]): a failing case replays from the seed alone,
//! and the printed `site=spec;…` form feeds straight into
//! `polyfit-cli serve --failpoint`.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard};
use std::time::Duration;

use proptest::prelude::*;

use polyfit_suite::exact::dataset::Record;
use polyfit_suite::polyfit::failpoint::{self, Schedule};
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::wal as pwal;
use polyfit_suite::polyfit::{DynamicServeConfig, ShardConfig};

/// One registry, many tests: take this before touching failpoints. A
/// panicking test (several tests *expect* panics) must not wedge the
/// rest, so poisoning is ignored.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarm every site on scope exit — including unwinds — so one test's
/// schedule can never leak into the next.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        failpoint::reset();
    }
}

fn base_records(n: usize) -> Vec<Record> {
    (0..n).map(|i| Record::new(i as f64 * 0.5 - 100.0, 1.0 + (i % 3) as f64)).collect()
}

fn capped_config() -> PolyFitConfig {
    PolyFitConfig { max_segment_len: Some(96), ..PolyFitConfig::default() }
}

fn fresh_wal_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("polyfit-failpoint-tests").join(format!("{tag}-{n}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic update stream: seed-free, so the *schedule* is the
/// only random input of a case.
fn update_stream(n: usize) -> Vec<(bool, f64, f64)> {
    (0..n)
        .map(|i| {
            let k = (i as f64 * 37.0) % 280.0 - 140.0;
            let m = 0.5 + (i % 7) as f64;
            (i % 5 != 3, k, m)
        })
        .collect()
}

/// Bitwise probe grid over the workload's key window.
fn assert_bitwise_equal(a: &DynamicPolyFitSum, b: &DynamicPolyFitSum) -> Result<(), String> {
    for s in 0..40 {
        let lo = -170.0 + s as f64 * 8.5;
        for span in [0.0, 5.5, 63.0, 400.0] {
            let (x, y) = (a.query(lo, lo + span), b.query(lo, lo + span));
            if x.to_bits() != y.to_bits() {
                return Err(format!("({lo}, {}]: {x} vs {y}", lo + span));
            }
        }
    }
    Ok(())
}

/// Quiesced oracle: replay `upto` updates, staging at the logged points
/// and blocking-compacting the first `swaps` of them (a staged-but-
/// unswapped rebuild is bitwise-transparent — the PR 3 contract).
fn replay_oracle(
    n_base: usize,
    delta: f64,
    limit: usize,
    updates: &[Update],
    stage_log: &[u64],
    upto: u64,
    swaps: u64,
) -> DynamicPolyFitSum {
    let mut o =
        DynamicPolyFitSum::new(base_records(n_base), delta, capped_config(), limit).unwrap();
    o.set_step_budget(0);
    let mut si = 0usize;
    for (i, &u) in updates.iter().take(upto as usize).enumerate() {
        match u {
            Update::Insert { key, measure } => o.insert(key, measure),
            Update::Delete { key, measure } => o.delete(key, measure),
        }
        while si < stage_log.len() && stage_log[si] <= (i + 1) as u64 {
            if (si as u64) < swaps {
                assert!(o.begin_compaction(), "logged stage {si} must have work");
                o.compact_now();
            }
            si += 1;
        }
    }
    o
}

// ---------------------------------------------------------------------------
// Spec/schedule plumbing through the public surface
// ---------------------------------------------------------------------------

#[test]
fn schedules_roundtrip_through_display_and_parse() {
    let _g = serial();
    for seed in 0..64u64 {
        let s = Schedule::random(
            seed,
            &[
                ("dynamic.step.skip", &["trigger"]),
                ("serve.fence.skip", &["trigger"]),
                ("wal.fsync.err", &["error"]),
                ("shard.worker.panic", &["panic", "delay(2)"]),
            ],
        );
        let text = s.to_string();
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(s, back, "seed {seed}: '{text}' did not roundtrip");
        assert!(!s.0.is_empty() && s.0.len() <= 3);
    }
}

// ---------------------------------------------------------------------------
// Dynamic layer: compaction aborted / delayed / starved, swap panics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Non-fatal dynamic-layer schedules: staging aborts, skipped and
    /// starved rebuild steps, and a delayed swap may postpone compaction
    /// arbitrarily — but the index must stay bitwise-equal to the
    /// quiesced oracle replay of what *actually* happened (the stage
    /// log + swap count are the provenance).
    #[test]
    fn dynamic_schedules_stay_bitwise_equal(seed in 0u64..u64::MAX) {
        let _g = serial();
        let _d = Disarm;
        let schedule = Schedule::random(seed, &[
            ("dynamic.stage.abort", &["trigger"]),
            ("dynamic.step.skip", &["trigger"]),
            ("dynamic.step.starve", &["trigger"]),
            ("dynamic.swap.panic", &["delay(1)"]),
        ]);
        schedule.install().unwrap();

        let mut live =
            DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 10).unwrap();
        live.set_step_budget(0);
        let stream = update_stream(40);
        let mut updates = Vec::new();
        let mut stage_log: Vec<u64> = Vec::new();
        for (i, &(ins, k, m)) in stream.iter().enumerate() {
            if ins {
                live.insert(k, m);
                updates.push(Update::Insert { key: k, measure: m });
            } else {
                live.delete(k, m);
                updates.push(Update::Delete { key: k, measure: m });
            }
            if i % 6 == 5 {
                if live.begin_compaction() {
                    stage_log.push((i + 1) as u64);
                }
                live.step_compaction(24);
            }
        }
        // Coverage proof first (reset clears the counters): every armed
        // site was actually evaluated during the live run. The swap site
        // is exempt — a schedule that aborts or starves compaction
        // legitimately never reaches a swap (the dedicated swap-panic
        // test covers it deterministically).
        for (site, _) in &schedule.0 {
            prop_assert!(
                site == "dynamic.swap.panic" || failpoint::hits(site) > 0,
                "site {} never hit", site
            );
        }
        // The oracle replays quiesced — injection must not reach it.
        failpoint::reset();
        let swaps = live.rebuilds() as u64;
        let oracle = replay_oracle(
            300, 8.0, 10, &updates, &stage_log, updates.len() as u64, swaps,
        );
        prop_assert_eq!(live.rebuilds(), oracle.rebuilds(), "schedule {}", schedule);
        if let Err(msg) = assert_bitwise_equal(&live, &oracle) {
            prop_assert!(false, "schedule '{}': {}", schedule, msg);
        }
    }
}

/// A panic at the swap instant — after the rebuild completed, before
/// the in-memory install and its WAL checkpoint. Recovery must land on
/// the pre-swap journal, bitwise-equal to a never-crashed control that
/// simply never compacted there.
#[test]
fn swap_panic_recovers_bitwise_to_preswap_journal() {
    let _g = serial();
    let _d = Disarm;
    let dir = fresh_wal_dir("swap-panic");
    let mut live = DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 10).unwrap();
    live.set_step_budget(0);
    live.attach_wal(&dir, "t", SyncPolicy::EveryUpdate, 0).unwrap();
    let stream = update_stream(30);
    let mut applied = Vec::new();
    let mut completed_swaps: Vec<u64> = Vec::new();
    for (i, &(ins, k, m)) in stream.iter().enumerate() {
        if ins {
            live.insert(k, m);
            applied.push(Update::Insert { key: k, measure: m });
        } else {
            live.delete(k, m);
            applied.push(Update::Delete { key: k, measure: m });
        }
        if i == 11 && live.begin_compaction() {
            live.compact_now(); // a completed, checkpointed swap first
            completed_swaps.push(applied.len() as u64);
        }
        if i == 23 {
            failpoint::configure("dynamic.swap.panic", "once:panic").unwrap();
            if live.begin_compaction() {
                let died = catch_unwind(AssertUnwindSafe(|| live.compact_now()));
                assert!(died.is_err(), "armed swap must panic");
            }
        }
    }
    assert_eq!(failpoint::fired("dynamic.swap.panic"), 1);
    failpoint::reset();
    let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
    assert_eq!(report.head_seq, applied.len() as u64, "every acked update survives");
    // Control: the same stream with only the *completed* swap — the
    // panicked one never checkpointed, so recovery must not see it.
    let oracle = replay_oracle(
        300,
        8.0,
        10,
        &applied,
        &completed_swaps,
        applied.len() as u64,
        completed_swaps.len() as u64,
    );
    assert_eq!(rec.rebuilds(), oracle.rebuilds());
    assert_bitwise_equal(&rec, &oracle).unwrap();
}

// ---------------------------------------------------------------------------
// Serve loop: stalls, oversized batches, skipped fences, drain panics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Non-fatal serve-loop schedules over a live `DynamicServer` with a
    /// WAL attached: stalled sweeps (queue backlog), batches that ignore
    /// `max_batch`, and ack fences skipped-then-forced. Every served
    /// answer must replay bitwise at its provenance, the handed-back
    /// index must equal the full replay, and recovery from the WAL must
    /// equal the handed-back index — the skipped fence was forced at
    /// shutdown, never elided.
    #[test]
    fn serve_schedules_stay_bitwise_equal(seed in 0u64..u64::MAX) {
        let _g = serial();
        let _d = Disarm;
        let schedule = Schedule::random(seed, &[
            ("serve.loop.stall", &["delay(2)"]),
            ("serve.batch.oversize", &["trigger"]),
            ("serve.fence.skip", &["trigger"]),
            ("serve.drain.panic", &["delay(1)"]),
        ]);
        schedule.install().unwrap();

        let dir = fresh_wal_dir("serve-sched");
        let mut index =
            DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 10).unwrap();
        index.set_step_budget(0);
        index.attach_wal(&dir, "t", SyncPolicy::Batch, 0).unwrap();
        let server = polyfit_suite::polyfit::DynamicServer::start(
            index,
            DynamicServeConfig {
                deadline: Duration::from_micros(30),
                max_batch: 4,
                compaction_budget: 48,
            },
        );
        let (tx, rx) = mpsc::channel::<(f64, f64)>();
        let qh = server.handle();
        let client = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for (lo, hi) in rx {
                seen.push((lo, hi, qh.query_served(lo, hi)));
            }
            seen
        });
        let writer = server.handle();
        let mut updates = Vec::new();
        for (i, &(ins, k, m)) in update_stream(36).iter().enumerate() {
            if ins {
                writer.insert(k, m).unwrap();
                updates.push(Update::Insert { key: k, measure: m });
            } else {
                writer.delete(k, m).unwrap();
                updates.push(Update::Delete { key: k, measure: m });
            }
            if i % 4 == 0 {
                let lo = -150.0 + (i as f64 * 11.0) % 280.0;
                tx.send((lo, lo + 60.0)).unwrap();
            }
        }
        drop(tx);
        let observed = client.join().expect("client thread panicked");
        let stage_log = server.stage_log();
        let (final_index, _stats) = server.shutdown();

        for (i, &(lo, hi, served)) in observed.iter().enumerate() {
            prop_assert!(!served.poisoned, "schedule '{}': query {} poisoned", schedule, i);
            let oracle = replay_oracle(
                300, 8.0, 10, &updates, &stage_log,
                served.updates_applied, served.rebuilds,
            );
            let expect = AggregateIndex::query(&oracle, lo, hi);
            prop_assert_eq!(
                served.answer.map(|a| a.value.to_bits()),
                expect.map(|a| a.value.to_bits()),
                "schedule '{}': query {} ({}, {}] at ({}, {})",
                schedule, i, lo, hi, served.updates_applied, served.rebuilds
            );
        }
        let oracle = replay_oracle(
            300, 8.0, 10, &updates, &stage_log,
            updates.len() as u64, final_index.rebuilds() as u64,
        );
        if let Err(msg) = assert_bitwise_equal(&final_index, &oracle) {
            prop_assert!(false, "schedule '{}': final state: {}", schedule, msg);
        }
        // Durability: the WAL fence can be delayed, never lost. Disarm
        // before recovering so injection cannot touch the replay.
        failpoint::reset();
        let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        prop_assert_eq!(report.head_seq, updates.len() as u64,
            "schedule '{}': shutdown must force the skipped fence", schedule);
        if let Err(msg) = assert_bitwise_equal(&rec, &final_index) {
            prop_assert!(false, "schedule '{}': recovery: {}", schedule, msg);
        }
    }
}

/// A panic while draining updates — the worst crash point of the serve
/// loop: a window was accepted but never applied or journaled. Tickets
/// poison (never acknowledge), and recovery replays exactly the synced
/// prefix, bitwise.
#[test]
fn drain_panic_poisons_tickets_and_recovers_synced_prefix() {
    let _g = serial();
    let _d = Disarm;
    let dir = fresh_wal_dir("drain-panic");
    let mut index = DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 1_000).unwrap();
    index.set_step_budget(0);
    index.attach_wal(&dir, "t", SyncPolicy::EveryUpdate, 0).unwrap();
    failpoint::configure("serve.drain.panic", "3:panic").unwrap();
    let server = polyfit_suite::polyfit::DynamicServer::start(
        index,
        DynamicServeConfig {
            deadline: Duration::from_micros(30),
            max_batch: 4,
            compaction_budget: 0,
        },
    );
    let writer = server.handle();
    let stream = update_stream(24);
    for &(ins, k, m) in &stream {
        // Once the loop dies, the fail-stop guard closes the queue and
        // later submissions panic by the shutdown contract — loud
        // refusal, not a silent enqueue into a dead server.
        let pushed = catch_unwind(AssertUnwindSafe(|| {
            if ins {
                writer.insert(k, m).unwrap();
            } else {
                writer.delete(k, m).unwrap();
            }
        }));
        if pushed.is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // A query against the dead loop resolves poisoned or is refused
    // loudly — it must never hang and never answer wrong.
    // An Err here means the queue was already fail-stopped: refused
    // loudly, which satisfies the same contract.
    if let Ok(served) = catch_unwind(AssertUnwindSafe(|| writer.query_served(-50.0, 50.0))) {
        assert!(served.poisoned || served.answer.is_some());
    }
    let shutdown = catch_unwind(AssertUnwindSafe(move || server.shutdown()));
    assert!(shutdown.is_err(), "shutdown re-raises the loop panic");
    assert!(failpoint::fired("serve.drain.panic") >= 1, "the armed drain panic fired");
    failpoint::reset();
    // Recovery: whatever prefix the journal synced, replayed bitwise.
    let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
    let n = report.head_seq as usize;
    assert!(n <= stream.len());
    let mut oracle =
        DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 1_000).unwrap();
    oracle.set_step_budget(0);
    for &(ins, k, m) in &stream[..n] {
        if ins {
            oracle.insert(k, m);
        } else {
            oracle.delete(k, m);
        }
    }
    assert_eq!(rec.buffered(), oracle.buffered());
    assert_bitwise_equal(&rec, &oracle).unwrap();
}

// ---------------------------------------------------------------------------
// Shard layer: rebalance races, push-failure storms, worker death
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Non-fatal shard schedules: delays stretched across every step of
    /// the split/merge protocol (cutover-to-publish window, post-close
    /// straggler window, merge handoff) and a stalled `process_batch`.
    /// Splits race live traffic the whole time; every answer must still
    /// match the [`ShardedOracle`] bitwise.
    #[test]
    fn shard_schedules_stay_bitwise_equal(seed in 0u64..u64::MAX) {
        let _g = serial();
        let _d = Disarm;
        let schedule = Schedule::random(seed, &[
            ("shard.split.pre_publish", &["delay(2)"]),
            ("shard.split.post_close", &["delay(2)"]),
            ("shard.merge.handoff", &["delay(2)"]),
            ("shard.worker.panic", &["delay(1)"]),
        ]);
        schedule.install().unwrap();

        let cfg = ShardConfig {
            shards: 1,
            deadline: Duration::from_micros(30),
            max_batch: 8,
            compaction_budget: 48,
            buffer_limit: 12,
            split_threshold: 340,
            max_shards: 6,
            record_history: true,
            ..ShardConfig::default()
        };
        let server =
            ShardedServer::start(base_records(600), 8.0, capped_config(), cfg).unwrap();
        let writer = server.handle();
        let mut observed = Vec::new();
        for (i, &(ins, k, m)) in update_stream(48).iter().enumerate() {
            if ins {
                writer.insert(k, m).unwrap();
            } else {
                writer.delete(k, m).unwrap();
            }
            if i % 4 == 0 {
                let lo = -150.0 + (i as f64 * 13.0) % 280.0;
                observed.push((lo, lo + 80.0, writer.query_served(lo, lo + 80.0)));
            }
        }
        // Domain-spanning probes force scatter-gather across whatever
        // layout the races produced.
        for &(lo, hi) in &[(-250.0, 300.0), (-40.0, 40.0), (f64::NEG_INFINITY, 0.0)] {
            observed.push((lo, hi, writer.query_served(lo, hi)));
        }
        let oracle = server.oracle();
        for (i, (lo, hi, served)) in observed.iter().enumerate() {
            prop_assert!(!served.poisoned,
                "schedule '{}': query {} ({}, {}] poisoned", schedule, i, lo, hi);
            prop_assert!(
                oracle.matches(served),
                "schedule '{}': query {} ({}, {}]: {:?} vs {:?}",
                schedule, i, lo, hi, served.answer, oracle.expected(served)
            );
        }
        server.shutdown();
    }
}

/// A bounded push-failure storm: every k-th enqueue is rejected as if
/// the queue had closed. Submitters and straggler-forwarding must hand
/// the request back losslessly and retry — no lost update, no dropped
/// query, answers bitwise vs the oracle.
#[test]
fn push_failure_storm_loses_nothing() {
    let _g = serial();
    let _d = Disarm;
    failpoint::configure("shard.queue.push_fail", "*3:trigger").unwrap();
    let cfg = ShardConfig {
        shards: 2,
        deadline: Duration::from_micros(30),
        max_batch: 8,
        compaction_budget: 48,
        buffer_limit: 12,
        split_threshold: 340,
        max_shards: 6,
        record_history: true,
        ..ShardConfig::default()
    };
    let server = ShardedServer::start(base_records(600), 8.0, capped_config(), cfg).unwrap();
    let writer = server.handle();
    let mut observed = Vec::new();
    for (i, &(ins, k, m)) in update_stream(60).iter().enumerate() {
        if ins {
            writer.insert(k, m).unwrap();
        } else {
            writer.delete(k, m).unwrap();
        }
        if i % 5 == 0 {
            let lo = -150.0 + (i as f64 * 17.0) % 280.0;
            observed.push((lo, lo + 70.0, writer.query_served(lo, lo + 70.0)));
        }
    }
    assert!(failpoint::fired("shard.queue.push_fail") > 0, "the storm actually fired");
    let oracle = server.oracle();
    for (i, (lo, hi, served)) in observed.iter().enumerate() {
        assert!(!served.poisoned, "query {i} ({lo}, {hi}] poisoned");
        assert!(
            oracle.matches(served),
            "query {i} ({lo}, {hi}]: {:?} vs {:?}",
            served.answer,
            oracle.expected(served)
        );
    }
    server.shutdown();
}

/// Worker death mid-batch: the server must fail-stop — parked clients
/// wake with *poisoned* answers (never wrong ones, never a hang), and
/// shutdown still completes. Answers served before the death must still
/// match the oracle.
#[test]
fn worker_panic_fail_stops_poisoned_not_wrong() {
    let _g = serial();
    let _d = Disarm;
    failpoint::configure("shard.worker.panic", "4:panic").unwrap();
    let cfg = ShardConfig {
        shards: 2,
        deadline: Duration::from_micros(30),
        max_batch: 8,
        compaction_budget: 0,
        record_history: true,
        ..ShardConfig::default()
    };
    let server = ShardedServer::start(base_records(600), 8.0, capped_config(), cfg).unwrap();
    let writer = server.handle();
    let mut observed = Vec::new();
    for (i, &(ins, k, m)) in update_stream(48).iter().enumerate() {
        // After the fail-stop flips the server closed, `update` panics
        // by contract ("server has shut down") — tolerate and stop.
        let pushed = catch_unwind(AssertUnwindSafe(|| {
            if ins {
                writer.insert(k, m).unwrap();
            } else {
                writer.delete(k, m).unwrap();
            }
        }));
        if pushed.is_err() {
            break;
        }
        if i % 3 == 0 {
            let lo = -150.0 + (i as f64 * 19.0) % 280.0;
            observed.push((lo, lo + 60.0, writer.query_served(lo, lo + 60.0)));
        }
    }
    assert_eq!(failpoint::fired("shard.worker.panic"), 1, "the armed panic fired");
    // Late queries resolve (poisoned), they do not hang.
    observed.push((-250.0, 300.0, writer.query_served(-250.0, 300.0)));
    let oracle = server.oracle();
    let mut poisoned = 0usize;
    for (i, (lo, hi, served)) in observed.iter().enumerate() {
        if served.poisoned {
            assert!(served.answer.is_none(), "poisoned answers carry no value");
            poisoned += 1;
            continue;
        }
        assert!(
            oracle.matches(served),
            "query {i} ({lo}, {hi}]: {:?} vs {:?}",
            served.answer,
            oracle.expected(served)
        );
    }
    assert!(poisoned >= 1, "the in-flight window must poison, not vanish");
    server.shutdown(); // joins the dead worker tolerantly — must return
}

// ---------------------------------------------------------------------------
// WAL: injected write/fsync faults are fail-stop; recovery stays bitwise
// ---------------------------------------------------------------------------

/// fsyncgate: the first failed fsync permanently fail-stops the
/// journal. No retry, no silent success — later syncs keep failing,
/// later appends panic, and the error chain names the injection site.
#[test]
fn injected_fsync_error_is_sticky_fail_stop() {
    let _g = serial();
    let _d = Disarm;
    let dir = fresh_wal_dir("fsyncgate");
    let mut live = DynamicPolyFitSum::new(base_records(200), 8.0, capped_config(), 1_000).unwrap();
    live.set_step_budget(0);
    live.attach_wal(&dir, "t", SyncPolicy::Batch, 0).unwrap();
    live.insert(1.0, 2.0);
    live.wal_sync().unwrap(); // clean sync first: the fault is not ambient
    live.insert(2.0, 3.0);
    failpoint::configure("wal.fsync.err", "once:error").unwrap();
    let err = live.wal_sync().expect_err("armed fsync must fail");
    let io = match err {
        WalError::Io(e) => e,
        other => panic!("expected a typed I/O error, got {other}"),
    };
    assert!(failpoint::is_injected(&io), "error chain must name the injection: {io}");
    // Sticky: the failpoint fired once, but the journal stays dead.
    let err2 = live.wal_sync().expect_err("a fail-stopped journal must not retry");
    assert!(err2.to_string().contains("fail-stopped"), "got: {err2}");
    let append = catch_unwind(AssertUnwindSafe(|| live.insert(3.0, 4.0)));
    assert!(append.is_err(), "appends after fail-stop must panic, not buffer silently");
    failpoint::reset();
    // Recovery: the cleanly synced insert MUST survive. The insert whose
    // fence failed was written but never fsync-acknowledged — it may
    // survive (the write reached the file before the failed barrier) or
    // not; both are honest crash states. What fail-stop rules out is
    // acknowledging it: nothing after the failed fence was ever acked.
    let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
    assert!(
        (1..=2).contains(&report.head_seq),
        "synced prefix lost or unappended data invented: {report:?}"
    );
    assert_eq!(rec.buffered() as u64, report.head_seq);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Storage-fault schedule exploration over the whole WAL fault
    /// model: write errors, fsync errors, short (in-frame torn) writes,
    /// misdirected writes, and duplicated segment writes. Every
    /// schedule must end in one of exactly two outcomes per update —
    /// acknowledged (survives recovery bitwise) or fail-stopped (panic
    /// with a typed cause, lost like a crash) — and recovery must be
    /// bitwise-equal to replaying the surviving prefix. Position-keyed
    /// checksums turn duplicated/misdirected frames into ordinary
    /// torn-tail cuts instead of silent double-applies.
    #[test]
    fn wal_fault_schedules_recover_bitwise_prefix(seed in 0u64..u64::MAX) {
        let _g = serial();
        let _d = Disarm;
        let schedule = Schedule::random(seed, &[
            ("wal.write.err", &["error"]),
            ("wal.fsync.err", &["error"]),
            ("wal.write.short", &["error"]),
            ("wal.write.misdirect", &["trigger"]),
            ("wal.write.duplicate", &["trigger"]),
        ]);
        let dir = fresh_wal_dir("wal-sched");
        let mut live =
            DynamicPolyFitSum::new(base_records(200), 8.0, capped_config(), 1_000).unwrap();
        live.set_step_budget(0);
        live.attach_wal(&dir, "t", SyncPolicy::EveryUpdate, 0).unwrap();
        schedule.install().unwrap();
        let stream = update_stream(24);
        let mut attempted = 0usize;
        for &(ins, k, m) in &stream {
            attempted += 1;
            let ok = catch_unwind(AssertUnwindSafe(|| {
                if ins { live.insert(k, m) } else { live.delete(k, m) }
            }));
            if ok.is_err() {
                break; // fail-stop: typed panic, workload over
            }
        }
        failpoint::reset();
        let (rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        let n = report.head_seq as usize;
        // Recovery yields a *prefix of the append order*, nothing
        // invented. Within that: silent faults (misdirect/duplicate) may
        // cost acked updates — that is what the fault means — and a
        // failed fence may leave its un-acked write behind (the bytes
        // reached the file before the barrier failed). Both directions
        // are honest crash states; a non-prefix is not.
        prop_assert!(
            n <= attempted,
            "schedule '{}': {} recovered > {} appended", schedule, n, attempted
        );
        let mut oracle =
            DynamicPolyFitSum::new(base_records(200), 8.0, capped_config(), 1_000).unwrap();
        oracle.set_step_budget(0);
        for &(ins, k, m) in &stream[..n] {
            if ins { oracle.insert(k, m) } else { oracle.delete(k, m) }
        }
        prop_assert_eq!(rec.buffered(), oracle.buffered(), "schedule '{}'", schedule);
        if let Err(msg) = assert_bitwise_equal(&rec, &oracle) {
            prop_assert!(false, "schedule '{}': {}", schedule, msg);
        }
        // A second recovery is clean and identical (truncate-at-
        // corruption is physical).
        let (rec2, report2) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        prop_assert_eq!(report2.truncated_bytes, 0);
        prop_assert_eq!(report2.head_seq, report.head_seq);
        if let Err(msg) = assert_bitwise_equal(&rec2, &rec) {
            prop_assert!(false, "schedule '{}': second recovery: {}", schedule, msg);
        }
    }
}

/// Deterministic sweep for the CI grep-gate: enumerate a fixed seed
/// range, count the schedules that armed *and fired* an injected fsync
/// error, and print the tally. CI greps for a non-zero count, so the
/// fsyncgate path can never silently fall out of the explored set.
#[test]
fn fsync_error_schedules_are_explored() {
    let _g = serial();
    let _d = Disarm;
    let mut fsync_error_schedules = 0usize;
    for seed in 0..24u64 {
        let schedule = Schedule::random(
            seed,
            &[
                ("wal.write.err", &["error"]),
                ("wal.fsync.err", &["error"]),
                ("wal.write.short", &["error"]),
                ("wal.write.misdirect", &["trigger"]),
                ("wal.write.duplicate", &["trigger"]),
            ],
        );
        let dir = fresh_wal_dir("fsync-gate");
        let mut live =
            DynamicPolyFitSum::new(base_records(200), 8.0, capped_config(), 1_000).unwrap();
        live.set_step_budget(0);
        live.attach_wal(&dir, "t", SyncPolicy::EveryUpdate, 0).unwrap();
        schedule.install().unwrap();
        for &(ins, k, m) in &update_stream(16) {
            let ok = catch_unwind(AssertUnwindSafe(|| {
                if ins {
                    live.insert(k, m)
                } else {
                    live.delete(k, m)
                }
            }));
            if ok.is_err() {
                break;
            }
        }
        if schedule.arms_site("wal.fsync.err") && failpoint::fired("wal.fsync.err") > 0 {
            fsync_error_schedules += 1;
        }
        failpoint::reset();
        // Every schedule still recovers to *something* valid.
        let (_rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
        assert!(report.head_seq <= 16);
    }
    println!("injected-fsync-error schedules run: {fsync_error_schedules}");
    assert!(fsync_error_schedules >= 1, "the sweep must exercise the fsyncgate path");
}

/// The serve loop on top of an injected fsync error: group commit at an
/// ack point hits the dead device, the loop fail-stops (panic, poisoned
/// tickets), and recovery yields the synced prefix — never an
/// acknowledged-but-lost update.
#[test]
fn serve_loop_fail_stops_on_injected_fsync_error() {
    let _g = serial();
    let _d = Disarm;
    let dir = fresh_wal_dir("serve-fsync");
    let mut index = DynamicPolyFitSum::new(base_records(300), 8.0, capped_config(), 1_000).unwrap();
    index.set_step_budget(0);
    index.attach_wal(&dir, "t", SyncPolicy::Batch, 0).unwrap();
    failpoint::configure("wal.fsync.err", "2:error").unwrap();
    let server = polyfit_suite::polyfit::DynamicServer::start(
        index,
        DynamicServeConfig {
            deadline: Duration::from_micros(30),
            max_batch: 4,
            compaction_budget: 0,
        },
    );
    let writer = server.handle();
    let stream = update_stream(30);
    let mut submitted = 0usize;
    for &(ins, k, m) in &stream {
        let step = catch_unwind(AssertUnwindSafe(|| {
            if ins {
                writer.insert(k, m).unwrap();
            } else {
                writer.delete(k, m).unwrap();
            }
            // A query forces an ack-point fence for this window.
            writer.query_served(-50.0, 50.0)
        }));
        match step {
            Ok(served) if !served.poisoned => submitted += 1,
            _ => break, // fail-stopped: poisoned ticket or loud refusal
        }
    }
    let shutdown = catch_unwind(AssertUnwindSafe(move || server.shutdown()));
    assert!(shutdown.is_err(), "the loop must re-raise the fail-stop panic");
    assert!(failpoint::fired("wal.fsync.err") >= 1);
    assert!(submitted < stream.len(), "the dead fence must stop the stream");
    failpoint::reset();
    // Every acknowledged window was fenced before its ticket resolved,
    // so all of them must survive; the window whose fence failed may or
    // may not (written, never acked). Nothing beyond it exists.
    let (_rec, report) = DynamicPolyFitSum::recover(&dir, "t").unwrap();
    assert!(
        (report.head_seq as usize) >= submitted && (report.head_seq as usize) <= stream.len(),
        "acked windows lost or unappended data invented: {} vs {} acked",
        report.head_seq,
        submitted
    );
}

// ---------------------------------------------------------------------------
// Satellite: typed NoJournal errors on empty/missing WAL directories
// ---------------------------------------------------------------------------

#[test]
fn recover_on_missing_or_empty_dir_is_a_typed_error() {
    let _g = serial();
    let missing = fresh_wal_dir("nojournal-missing");
    match DynamicPolyFitSum::recover(&missing, "t") {
        Err(WalError::NoJournal(p)) => assert_eq!(p, missing),
        other => panic!("expected NoJournal, got {other:?}"),
    }
    let empty = fresh_wal_dir("nojournal-empty");
    std::fs::create_dir_all(&empty).unwrap();
    match DynamicPolyFitSum::recover(&empty, "t") {
        Err(WalError::NoJournal(p)) => assert_eq!(p, empty),
        other => panic!("expected NoJournal, got {other:?}"),
    }
    match ShardedServer::recover(&empty, ShardConfig::default(), SyncPolicy::Batch) {
        Err(WalError::NoJournal(p)) => assert_eq!(p, empty),
        Ok(_) => panic!("expected NoJournal, got a server"),
        Err(other) => panic!("expected NoJournal, got {other}"),
    }
    // The message names the path — that is the whole point.
    let msg = WalError::NoJournal(empty.clone()).to_string();
    assert!(msg.contains(empty.to_str().unwrap()), "got: {msg}");
    let _ = pwal::scan_wal; // keep the wal import tied to this suite
}
