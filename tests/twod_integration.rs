//! End-to-end validation of the two-key extension against the aggregate
//! R-tree on clustered (OSM-like) data.

use polyfit_suite::data::{generate_osm, query_rectangles};
use polyfit_suite::exact::artree::Rect;
use polyfit_suite::exact::dataset::Point2d;
use polyfit_suite::exact::ARTree;
use polyfit_suite::polyfit::twod::{Guaranteed2dCount, Quad2dConfig, QuadPolyFit};

fn points(n: usize, seed: u64) -> Vec<Point2d> {
    generate_osm(n, seed).iter().map(|p| Point2d::new(p.u, p.v, p.w)).collect()
}

fn cfg() -> Quad2dConfig {
    Quad2dConfig { grid_resolution: 512, ..Default::default() }
}

#[test]
fn lattice_certification_holds() {
    let pts = points(200_000, 1);
    let idx = QuadPolyFit::build(&pts, 100.0, cfg()).expect("build");
    assert_eq!(
        idx.uncertified_leaves(),
        0,
        "δ=100 must be resolvable at lattice 512 (worst {})",
        idx.max_leaf_error()
    );
    assert!(idx.max_leaf_error() <= 100.0 + 1e-6);
}

#[test]
fn measured_errors_on_random_rectangles() {
    // Empirical validation of the Lemma 6 composition on arbitrary
    // (off-lattice) rectangles: errors stay near 4δ (lattice strips add a
    // small data-dependent slack; assert a generous envelope and a tight
    // mean).
    let pts = points(200_000, 2);
    let eps_abs = 400.0; // δ = 100
    let driver = Guaranteed2dCount::with_abs_guarantee(&pts, eps_abs, cfg()).expect("build");
    let exact = ARTree::new(pts.clone());
    let rects = query_rectangles((-180.0, 180.0, -60.0, 75.0), 300, 0.3, 5);
    let mut errs = Vec::new();
    for r in &rects {
        let approx = driver.query_abs(r.u_lo, r.u_hi, r.v_lo, r.v_hi);
        let truth = exact.range_count(&Rect::new(r.u_lo, r.u_hi, r.v_lo, r.v_hi)) as f64;
        errs.push((approx - truth).abs());
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let worst = errs.iter().cloned().fold(0.0f64, f64::max);
    assert!(mean <= eps_abs, "mean error {mean} above ε_abs {eps_abs}");
    assert!(worst <= 3.0 * eps_abs, "worst error {worst} above envelope");
}

#[test]
fn rel_guarantee_certified_or_exact() {
    let pts = points(150_000, 3);
    let driver = Guaranteed2dCount::with_rel_guarantee(pts.clone(), 50.0, cfg()).expect("build");
    let exact = ARTree::new(pts);
    let eps_rel = 0.05;
    let mut certified = 0usize;
    for r in query_rectangles((-180.0, 180.0, -60.0, 75.0), 150, 0.4, 7) {
        let ans = driver.query_rel(r.u_lo, r.u_hi, r.v_lo, r.v_hi, eps_rel);
        let truth = exact.range_count(&Rect::new(r.u_lo, r.u_hi, r.v_lo, r.v_hi)) as f64;
        if ans.used_fallback {
            assert_eq!(ans.value, truth, "fallback must be exact");
        } else {
            certified += 1;
            if truth > 0.0 {
                // Lattice-strip slack applies off-lattice; certified
                // answers must still be within ~2× the nominal bound.
                let rel = (ans.value - truth).abs() / truth;
                assert!(rel <= 2.0 * eps_rel, "certified rel err {rel}");
            }
        }
    }
    assert!(certified > 0, "certificate never passed — workload degenerate");
}

#[test]
fn scaling_delta_monotone_leaves() {
    let pts = points(100_000, 4);
    let coarse = QuadPolyFit::build(&pts, 400.0, cfg()).unwrap();
    let fine = QuadPolyFit::build(&pts, 25.0, cfg()).unwrap();
    assert!(fine.num_leaves() > coarse.num_leaves());
    assert!(fine.size_bytes() > coarse.size_bytes());
}

#[test]
fn total_and_empty_queries() {
    let pts = points(50_000, 5);
    let idx = QuadPolyFit::build(&pts, 50.0, cfg()).unwrap();
    let (u0, u1, v0, v1) = idx.bbox();
    let full = idx.query(u0 - 1.0, u1 + 1.0, v0 - 1.0, v1 + 1.0);
    assert!((full - 50_000.0).abs() <= 1e-6);
    assert_eq!(idx.query(u0 - 10.0, u0 - 5.0, v0, v1), 0.0);
}
