//! Property tests for non-blocking shadow compaction: interleaved
//! insert/delete/query streams driven across multiple compaction
//! boundaries against a naive `BTreeMap` oracle, with the incremental
//! stepper checked for bitwise equivalence against the blocking path and
//! for bounded per-update work.

use std::collections::BTreeMap;

use proptest::prelude::*;

use polyfit_suite::exact::dataset::Record;
use polyfit_suite::polyfit::dynamic::DynamicPolyFitSum;
use polyfit_suite::polyfit::prelude::*;

/// An update operation for the dynamic index.
#[derive(Clone, Debug)]
enum Op {
    Insert(f64, f64),
    Delete(f64, f64),
    /// Query endpoints are *selectors* into the set of seen keys: the SUM
    /// guarantee is certified at dataset keys (the paper's workload
    /// model), so the oracle compares there.
    Query(usize, usize),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..4, -150.0f64..150.0, 0.25f64..8.0, 0usize..1000, 0usize..1000),
        8..max_ops,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, a, m, sa, sb)| match kind {
                // Inserts twice as likely as deletes: content accumulates.
                0 | 1 => Op::Insert(a, m),
                2 => Op::Delete(a, m),
                _ => Op::Query(sa, sb),
            })
            .collect()
    })
}

/// Exact SUM oracle: key-bits → folded measure, zero entries removed
/// (mirroring the index's buffer semantics; `-0.0` folds with `+0.0`).
#[derive(Default)]
struct Oracle {
    content: BTreeMap<u64, (f64, f64)>,
}

impl Oracle {
    fn bits(k: f64) -> u64 {
        let k = if k == 0.0 { 0.0 } else { k };
        let b = k.to_bits();
        if b >> 63 == 1 {
            !b
        } else {
            b | (1 << 63)
        }
    }

    fn apply(&mut self, k: f64, m: f64) {
        let e = self.content.entry(Self::bits(k)).or_insert((k, 0.0));
        e.1 += m;
    }

    fn sum(&self, l: f64, u: f64) -> f64 {
        self.content
            .range((
                std::ops::Bound::Excluded(Self::bits(l)),
                std::ops::Bound::Included(Self::bits(u)),
            ))
            .map(|(_, &(_, m))| m)
            .sum()
    }

    fn keys(&self) -> Vec<f64> {
        self.content.values().map(|&(k, _)| k).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The stepped index crosses several compaction boundaries while the
    /// stream runs; at every query point its answers match `query_batch`
    /// bitwise, match a blocking twin bitwise, and stay within 2δ of the
    /// oracle. Each update's fitting work stays within one step budget
    /// (plus one atomic segment).
    #[test]
    fn interleaved_streams_across_compactions(
        ops in ops_strategy(80),
        buffer_limit in 2usize..16,
        budget in 8usize..64,
        seg_cap in 24usize..64,
    ) {
        let n = 600usize;
        let delta = 5.0;
        let config = PolyFitConfig {
            max_segment_len: Some(seg_cap),
            ..PolyFitConfig::default()
        };
        let base: Vec<Record> =
            (0..n).map(|i| Record::new(i as f64 - 300.0, 1.0)).collect();
        // Both instances run in manual mode; the drive policy below
        // replicates the auto-driven one, and the blocking reference
        // compacts at exactly the moments the stepped instance *stages*
        // — the deterministic ground truth an incremental rebuild must
        // reproduce bitwise.
        let mut stepped =
            DynamicPolyFitSum::new(base.clone(), delta, config, buffer_limit).unwrap();
        stepped.set_step_budget(0);
        let mut blocking =
            DynamicPolyFitSum::new(base.clone(), delta, config, buffer_limit).unwrap();
        blocking.set_step_budget(0);
        let mut oracle = Oracle::default();
        for r in &base {
            oracle.apply(r.key, r.measure);
        }

        // Top up with distinct inserts so every case crosses at least
        // one compaction boundary regardless of the generated mix.
        let mut all_ops = ops.clone();
        for i in 0..2 * buffer_limit {
            all_ops.push(Op::Insert(500.5 + i as f64, 1.0));
            all_ops.push(Op::Query(i * 13, i * 29 + 7));
        }

        let mut stagings = 0usize;
        for op in &all_ops {
            match *op {
                Op::Insert(k, m) => {
                    stepped.insert(k, m);
                    blocking.insert(k, m);
                    oracle.apply(k, m);
                }
                Op::Delete(k, m) => {
                    stepped.delete(k, m);
                    blocking.delete(k, m);
                    oracle.apply(k, -m);
                }
                Op::Query(sa, sb) => {
                    let keys = oracle.keys();
                    let a = keys[sa % keys.len()];
                    let b = keys[sb % keys.len()];
                    let (l, u) = (a.min(b), a.max(b));
                    let approx = stepped.query(l, u);
                    // Within 2δ of the exact oracle, even mid-rebuild.
                    let truth = oracle.sum(l, u);
                    prop_assert!(
                        (approx - truth).abs() <= 2.0 * delta + 1e-6,
                        "({l}, {u}]: approx {approx} truth {truth} \
                         (compacting: {})", stepped.is_compacting()
                    );
                    // query_batch is bitwise-equal to per-range query.
                    let batch = stepped.query_batch(&[(l, u), (u, l), (l, l)]);
                    prop_assert_eq!(batch[0].to_bits(), approx.to_bits());
                    prop_assert_eq!(batch[1].to_bits(), 0.0f64.to_bits());
                    prop_assert_eq!(batch[2].to_bits(), 0.0f64.to_bits());
                }
            }
            // The auto-drive policy, replicated manually so the blocking
            // reference can mirror the staging points: step a pending
            // rebuild by one budget; stage when the limit is crossed.
            let mut stepped_now = false;
            let before = stepped.compaction().map(|s| s.refit_points_done).unwrap_or(0);
            if stepped.is_compacting() {
                stepped.step_compaction(budget);
                stepped_now = true;
            } else if stepped.buffered() >= buffer_limit {
                prop_assert!(stepped.begin_compaction());
                stagings += 1;
                blocking.compact_now(); // same snapshot, all at once
                stepped.step_compaction(budget);
                stepped_now = true;
            }
            if stepped_now {
                // Bounded writer: one update drives at most one budget of
                // fitting work, plus one atomic segment (≤ seg_cap points).
                let after = stepped
                    .compaction()
                    .map(|s| s.refit_points_done)
                    .unwrap_or_else(|| stepped.last_compaction().map_or(0, |r| r.refit_points));
                prop_assert!(
                    after >= before && after - before <= budget + seg_cap,
                    "one update refit {} → {} points (budget {budget}, cap {seg_cap})",
                    before,
                    after
                );
            }
        }
        // Crossing compaction boundaries is the point of the test.
        prop_assert!(
            stagings >= 1,
            "stream never triggered a compaction (limit {buffer_limit})"
        );

        // Finish the in-flight rebuild (if any); the two instances must
        // now be bitwise-identical: same base, same buffer, same answers.
        while stepped.is_compacting() {
            stepped.step_compaction(budget);
        }
        prop_assert_eq!(stepped.rebuilds(), blocking.rebuilds());
        prop_assert_eq!(stepped.base_len(), blocking.base_len());
        prop_assert_eq!(stepped.buffered(), blocking.buffered());
        let keys = oracle.keys();
        let probes: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let a = keys[(i * 37) % keys.len()];
                let b = keys[(i * 53 + 11) % keys.len()];
                (a.min(b), a.max(b))
            })
            .collect();
        let sb = stepped.query_batch(&probes);
        let bb = blocking.query_batch(&probes);
        for ((&(l, u), a), b) in probes.iter().zip(&sb).zip(&bb) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "probe ({}, {}]", l, u);
            prop_assert_eq!(a.to_bits(), stepped.query(l, u).to_bits());
        }
    }

    /// A delete-weighted stream that can empty the index entirely never
    /// panics, and the degenerate (base-less) state answers exactly.
    #[test]
    fn delete_heavy_streams_never_panic(
        buffer_limit in 1usize..12,
        budget in 4usize..48,
        extra in 0usize..30,
    ) {
        let n = 60usize;
        let base: Vec<Record> = (0..n).map(|i| Record::new(i as f64, 1.0)).collect();
        let mut idx =
            DynamicPolyFitSum::new(base, 3.0, PolyFitConfig::default(), buffer_limit).unwrap();
        idx.set_step_budget(budget);
        // Delete everything, then a few more (negative overhang), then
        // rebuild content.
        for i in 0..n {
            idx.delete(i as f64, 1.0);
        }
        for i in 0..extra {
            idx.delete((i % n) as f64, 0.5);
        }
        idx.compact_now();
        prop_assert!(idx.rebuilds() >= 1);
        for i in 0..20 {
            idx.insert(i as f64 + 0.25, 2.0);
        }
        idx.compact_now();
        let approx = idx.query(-1.0, n as f64);
        let truth = -(extra as f64) * 0.5 + 40.0;
        prop_assert!(
            (approx - truth).abs() <= 6.0 + 1e-6,
            "approx {approx} truth {truth}"
        );
    }
}
