//! Cross-validation of every baseline against the exact substrates —
//! the apples-to-apples precondition for the paper's comparisons.

use polyfit_suite::baselines::{EquiDepthHistogram, FitingTree, Rmi, S2Sampler, STree};
use polyfit_suite::data::{generate_tweet, query_intervals_from_keys};
use polyfit_suite::exact::dataset::{dedup_sum, sort_records, Record};
use polyfit_suite::exact::{ARTree, BPlusTree, KeyCumulativeArray};

fn prepared(n: usize, seed: u64) -> (Vec<Record>, Vec<f64>, Vec<f64>) {
    let mut records: Vec<Record> =
        generate_tweet(n, seed).iter().map(|r| Record::new(r.key, r.measure)).collect();
    sort_records(&mut records);
    let records = dedup_sum(records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let mut acc = 0.0;
    let values: Vec<f64> = records
        .iter()
        .map(|r| {
            acc += r.measure;
            acc
        })
        .collect();
    (records, keys, values)
}

#[test]
fn rmi_and_fitting_respect_shared_delta() {
    let (records, keys, values) = prepared(30_000, 5);
    let exact = KeyCumulativeArray::new(&records);
    let delta = 40.0;
    let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 10, 100], delta);
    let fit = FitingTree::new(&keys, &values, delta);
    for q in query_intervals_from_keys(&keys, 300, 3) {
        let truth = exact.range_sum(q.lo, q.hi);
        assert!((rmi.query(q.lo, q.hi) - truth).abs() <= 2.0 * delta + 1e-6, "RMI");
        assert!((fit.query(q.lo, q.hi) - truth).abs() <= 2.0 * delta + 1e-6, "FITing");
    }
}

#[test]
fn btree_equals_kca_everywhere() {
    let (records, keys, _) = prepared(20_000, 7);
    let kca = KeyCumulativeArray::new(&records);
    let btree = BPlusTree::new(&records);
    for q in query_intervals_from_keys(&keys, 500, 11) {
        assert_eq!(btree.range_sum(q.lo, q.hi), kca.range_sum(q.lo, q.hi));
    }
    // Off-key probes too.
    for i in 0..200 {
        let x = -60.0 + i as f64 * 0.7;
        assert_eq!(btree.cf(x), kca.cf(x), "cf at {x}");
    }
}

#[test]
fn stree_full_rate_equals_exact() {
    let (records, keys, _) = prepared(10_000, 9);
    let kca = KeyCumulativeArray::new(&records);
    // measure == 1 for TWEET, so counting tree at rate 1.0 is exact.
    let st = STree::new(&keys, 1.0, 1);
    for q in query_intervals_from_keys(&keys, 200, 13) {
        assert_eq!(st.query(q.lo, q.hi), kca.range_sum(q.lo, q.hi));
    }
}

#[test]
fn histogram_error_shrinks_with_buckets() {
    let (records, keys, values) = prepared(50_000, 11);
    let exact = KeyCumulativeArray::new(&records);
    let queries = query_intervals_from_keys(&keys, 300, 17);
    let mean_err = |buckets: usize| -> f64 {
        let h = EquiDepthHistogram::new(&keys, &values, buckets);
        let mut sum = 0.0;
        for q in &queries {
            sum += (h.query(q.lo, q.hi) - exact.range_sum(q.lo, q.hi)).abs();
        }
        sum / queries.len() as f64
    };
    let coarse = mean_err(16);
    let fine = mean_err(4096);
    assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
}

#[test]
fn s2_bounds_hold_in_aggregate() {
    // Probabilistic guarantee: check the *fraction* of violations stays
    // near the nominal 10% at confidence 0.9.
    let (_, keys, _) = prepared(50_000, 13);
    let exact_count = |l: f64, u: f64| keys.iter().filter(|&&k| k > l && k <= u).count() as f64;
    let s2 = S2Sampler::new(keys.clone());
    let queries = query_intervals_from_keys(&keys, 100, 19);
    let mut violations = 0usize;
    let mut evaluated = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let truth = exact_count(q.lo, q.hi);
        if truth < 500.0 {
            continue; // tiny ranges: CLT rule cannot certify cheaply
        }
        evaluated += 1;
        let est = s2.query_rel(q.lo, q.hi, 0.05, i as u64);
        if (est.value - truth).abs() / truth > 0.05 {
            violations += 1;
        }
    }
    assert!(evaluated > 30, "workload too small");
    let rate = violations as f64 / evaluated as f64;
    assert!(rate <= 0.25, "violation rate {rate} (nominal 0.10)");
}

#[test]
fn artree_count_agrees_with_scan_on_clusters() {
    use polyfit_suite::exact::artree::Rect;
    use polyfit_suite::exact::dataset::Point2d;
    let pts: Vec<Point2d> = polyfit_suite::data::generate_osm(30_000, 21)
        .iter()
        .map(|p| Point2d::new(p.u, p.v, p.w))
        .collect();
    let tree = ARTree::new(pts.clone());
    for rect in polyfit_suite::data::query_rectangles((-180.0, 180.0, -60.0, 75.0), 100, 0.3, 23) {
        let q = Rect::new(rect.u_lo, rect.u_hi, rect.v_lo, rect.v_hi);
        let brute = pts
            .iter()
            .filter(|p| {
                p.u >= rect.u_lo && p.u <= rect.u_hi && p.v >= rect.v_lo && p.v <= rect.v_hi
            })
            .count() as u64;
        assert_eq!(tree.range_count(&q), brute);
    }
}
