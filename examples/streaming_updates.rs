//! Streaming updates — the paper's future-work scenario, handled by the
//! delta-buffer extension: a live feed of inserts/deletes on top of a
//! static PolyFit index, with the absolute guarantee preserved throughout
//! and periodic LSM-style compactions.
//!
//! Run with: `cargo run --release --example streaming_updates`

use std::time::Instant;

use polyfit_suite::exact::dataset::Record;
use polyfit_suite::polyfit::dynamic::DynamicPolyFitSum;
use polyfit_suite::polyfit::prelude::*;

fn main() {
    // Initial bulk load: 200k sensor readings.
    let records: Vec<Record> =
        (0..200_000).map(|i| Record::new(i as f64, 1.0 + (i % 7) as f64)).collect();
    let eps_abs = 100.0;
    let mut index =
        DynamicPolyFitSum::new(records.clone(), eps_abs / 2.0, PolyFitConfig::default(), 10_000)
            .expect("build");
    println!(
        "bulk-loaded {} records into {} segments",
        index.base_len(),
        index.base().map_or(0, |b| b.num_segments())
    );

    // A shadow copy to verify the guarantee live.
    let mut shadow: Vec<(f64, f64)> = records.iter().map(|r| (r.key, r.measure)).collect();

    // Stream 50k updates: mostly appends, some late corrections
    // (deletes + re-inserts).
    let t0 = Instant::now();
    for i in 0..50_000u64 {
        if i % 10 == 9 {
            // Correction: remove a past reading and restate it.
            let k = (i * 37 % 200_000) as f64;
            index.delete(k, 1.0);
            index.insert(k, 2.5);
            shadow.push((k, -1.0));
            shadow.push((k, 2.5));
        } else {
            let k = 200_000.0 + i as f64;
            index.insert(k, 1.0 + (i % 7) as f64);
            shadow.push((k, 1.0 + (i % 7) as f64));
        }
    }
    println!(
        "streamed 50k updates in {:.1} ms ({} compactions, {} still buffered)",
        t0.elapsed().as_secs_f64() * 1e3,
        index.rebuilds(),
        index.buffered(),
    );
    if let Some(report) = index.last_compaction() {
        println!(
            "last compaction: {} segments reused, {} refitted ({:.0}% of points refit)",
            report.reused_segments,
            report.refit_segments,
            report.refit_fraction() * 100.0,
        );
    }

    // Verify the guarantee over a sweep of windows.
    let mut worst: f64 = 0.0;
    for w in 0..100 {
        let lo = w as f64 * 2_500.0;
        let hi = lo + 30_000.0;
        let truth: f64 = shadow.iter().filter(|(k, _)| *k > lo && *k <= hi).map(|(_, m)| m).sum();
        let approx = index.query(lo, hi);
        worst = worst.max((approx - truth).abs());
    }
    println!("worst observed error over 100 windows: {worst:.2} (guarantee {eps_abs})");
    assert!(worst <= eps_abs, "guarantee violated");
}
