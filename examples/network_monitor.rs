//! Network intrusion monitoring — the paper's FastRAQ-style motivation
//! [58]: µs-level range COUNT over a stream of flow records, comparing
//! PolyFit against the learned-index baselines on the same guarantee.
//!
//! Run with: `cargo run --release --example network_monitor`

use std::time::Instant;

use polyfit_suite::baselines::{FitingTree, Rmi};
use polyfit_suite::exact::dataset::{dedup_sum, sort_records, Record};
use polyfit_suite::exact::KeyCumulativeArray;
use polyfit_suite::polyfit::prelude::*;

fn main() {
    // Flow records keyed by (bucketed) source address as a float key —
    // heavy-hitter subnets get disproportionate traffic.
    let n = 500_000;
    let mut records: Vec<Record> = (0..n)
        .map(|i| {
            let subnet = ((i * 2654435761usize) % 65_536) as f64;
            let heavy = if subnet < 200.0 { 40.0 } else { 1.0 };
            Record::new(subnet + (i % 97) as f64 / 100.0, heavy)
        })
        .collect();
    sort_records(&mut records);
    let records = dedup_sum(records);
    let exact = KeyCumulativeArray::new(&records);
    let keys: Vec<f64> = records.iter().map(|r| r.key).collect();
    let values = exact.cumulative().to_vec();

    // All three learned methods under the same ε_abs = 200 budget.
    let eps = 200.0;
    let pf = GuaranteedSum::with_abs_guarantee(records.clone(), eps, PolyFitConfig::default());
    let rmi = Rmi::new(keys.clone(), values.clone(), &[1, 10, 100, 1000], eps / 2.0);
    let fit = FitingTree::new(&keys, &values, eps / 2.0);
    println!(
        "index sizes: PolyFit {} KB ({} segs) | FITing {} KB ({} segs) | RMI {} KB",
        pf.index().size_bytes() / 1024,
        pf.index().num_segments(),
        fit.size_bytes() / 1024,
        fit.num_segments(),
        rmi.size_bytes() / 1024,
    );

    // The monitor sweeps suspicious subnet ranges every tick.
    let suspicious: Vec<(f64, f64)> = (0..10_000)
        .map(|i| {
            let lo = ((i * 7919) % 60_000) as f64;
            (lo, lo + 500.0)
        })
        .collect();

    for (name, f) in [
        (
            "PolyFit-2",
            Box::new(|l: f64, u: f64| pf.query_abs(l, u)) as Box<dyn Fn(f64, f64) -> f64>,
        ),
        ("FITing", Box::new(|l, u| fit.query(l, u))),
        ("RMI", Box::new(|l, u| rmi.query(l, u))),
    ] {
        let t = Instant::now();
        let mut alerts = 0usize;
        for &(l, u) in &suspicious {
            // Alert when a 500-subnet window carries over 10k flow-weight.
            if f(l, u) > 10_000.0 {
                alerts += 1;
            }
        }
        let ns = t.elapsed().as_nanos() as f64 / suspicious.len() as f64;
        println!("{name:>9}: {ns:6.0} ns/window, {alerts} alerts");
    }

    // Verify the guarantee on a sample of windows.
    for &(l, u) in suspicious.iter().step_by(500) {
        let err = (pf.query_abs(l, u) - exact.range_sum(l, u)).abs();
        assert!(err <= eps + 1e-6, "window ({l}, {u}]: err {err}");
    }
    println!("guarantee verified on sampled windows (ε_abs = {eps}).");
}
