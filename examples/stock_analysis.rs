//! Stock-market analytics — the paper's motivating Fig. 1 scenario.
//!
//! A year of minute-level index values (synthetic HKI stand-in). The
//! analyst asks: average level over arbitrary windows (range SUM / COUNT)
//! and intraweek peaks/troughs (range MAX / MIN) — each answered in
//! sub-microsecond time from a few-KB index instead of scanning 900k rows.
//!
//! Run with: `cargo run --release --example stock_analysis`

use std::time::Instant;

use polyfit_suite::data::generate_hki;
use polyfit_suite::exact::dataset::Record;
use polyfit_suite::polyfit::prelude::*;
use polyfit_suite::polyfit::PolyFitMax;

fn main() {
    let n = 900_000;
    println!("generating {n} minutes of synthetic HKI ticks...");
    let records: Vec<Record> =
        generate_hki(n, 2018).iter().map(|r| Record::new(r.key, r.measure)).collect();

    // SUM index for averages: ε_abs = 100 index-points of cumulative mass.
    let t0 = Instant::now();
    let sum_idx =
        GuaranteedSum::with_abs_guarantee(records.clone(), 100.0, PolyFitConfig::default());
    // COUNT index to divide by (measure 1 per tick).
    let count_records: Vec<Record> = records.iter().map(|r| Record::new(r.key, 1.0)).collect();
    let cnt_idx = GuaranteedSum::with_abs_guarantee(count_records, 2.0, PolyFitConfig::default());
    // MAX and MIN indexes: ±25 index-points.
    let max_idx =
        GuaranteedMax::with_abs_guarantee(records.clone(), 25.0, PolyFitConfig::default());
    let min_idx = PolyFitMax::build_min(records.clone(), 25.0, PolyFitConfig::default()).unwrap();
    println!(
        "built 4 indexes in {:.2}s — SUM {} segs / MAX {} segs / sizes {} + {} bytes",
        t0.elapsed().as_secs_f64(),
        sum_idx.index().num_segments(),
        max_idx.index().num_segments(),
        sum_idx.index().size_bytes(),
        max_idx.index().size_bytes(),
    );

    // Analyst queries: windows of one day / week / month / quarter.
    let windows = [
        ("one day", 390.0 * 1.0),
        ("one week", 390.0 * 5.0),
        ("one month", 390.0 * 21.0),
        ("one quarter", 390.0 * 63.0),
    ];
    for (label, len) in windows {
        let lo = 450_000.0;
        let hi = lo + len;
        let t = Instant::now();
        let total = sum_idx.query_abs(lo, hi);
        let count = cnt_idx.query_abs(lo, hi).max(1.0);
        let avg = total / count;
        let peak = max_idx.query_abs(lo, hi).unwrap();
        let trough = min_idx.query_min(lo, hi).unwrap();
        let micros = t.elapsed().as_nanos() as f64 / 1e3;
        println!(
            "{label:>12}: avg {avg:9.1}  peak {peak:9.1}  trough {trough:9.1}   ({micros:.1} µs for all three)"
        );
        assert!(trough <= peak + 50.0, "trough must not exceed peak beyond tolerance");
    }

    // Certified 1%-relative averages over a quarter, falling back to the
    // exact prefix array only when the certificate fails.
    let rel_idx = GuaranteedSum::with_rel_guarantee(records, 50.0, PolyFitConfig::default());
    let ans = rel_idx.query_rel(100_000.0, 350_000.0, 0.01);
    println!(
        "certified 1% SUM over a 250k-minute window: {:.3e} ({})",
        ans.value,
        if ans.used_fallback { "fallback" } else { "approximation" }
    );
}
