//! Quickstart: build a PolyFit index and run approximate range aggregates.
//!
//! Run with: `cargo run --release --example quickstart`

use polyfit_suite::exact::dataset::Record;
use polyfit_suite::exact::KeyCumulativeArray;
use polyfit_suite::polyfit::prelude::*;

fn main() {
    // 1. A dataset of (key, measure) records — here, one reading per
    //    minute from a fictional meter.
    let records: Vec<Record> = (0..100_000)
        .map(|minute| {
            let key = minute as f64;
            let watts = 500.0 + 250.0 * (minute as f64 / 720.0).sin() + (minute % 17) as f64;
            Record::new(key, watts)
        })
        .collect();

    // 2. Build an index answering range SUM within ±1000 W (Problem 1:
    //    absolute guarantee; internally δ = ε_abs / 2 per Lemma 2).
    let eps_abs = 1000.0;
    let sum_index =
        GuaranteedSum::with_abs_guarantee(records.clone(), eps_abs, PolyFitConfig::default());
    println!(
        "SUM index: {} polynomial segments, {} bytes (dataset: {} records)",
        sum_index.index().num_segments(),
        sum_index.index().size_bytes(),
        records.len(),
    );

    // 3. Query: total consumption over minutes (10 000, 60 000].
    let (lo, hi) = (10_000.0, 60_000.0);
    let approx = sum_index.query_abs(lo, hi);
    let exact = KeyCumulativeArray::new(&records).range_sum(lo, hi);
    println!("range SUM  ({lo}, {hi}]: approx = {approx:.1}, exact = {exact:.1}, err = {:.1} (≤ {eps_abs})",
        (approx - exact).abs());
    assert!((approx - exact).abs() <= eps_abs);

    // 4. A MAX index with the same machinery (δ = ε_abs per Lemma 4).
    let max_index =
        GuaranteedMax::with_abs_guarantee(records.clone(), 50.0, PolyFitConfig::default());
    let peak = max_index.query_abs(lo, hi).expect("range overlaps the data");
    println!("range MAX  [{lo}, {hi}]: approx peak = {peak:.1} W (±50)");

    // 5. Relative guarantee with certified exact fallback (Problem 2).
    let rel_index = GuaranteedSum::with_rel_guarantee(records, 500.0, PolyFitConfig::default());
    let ans = rel_index.query_rel(lo, hi, 0.01);
    println!(
        "range SUM  ({lo}, {hi}] @ 1% relative: {:.1} ({})",
        ans.value,
        if ans.used_fallback { "exact fallback" } else { "certified approximation" },
    );
}
