//! Geospatial COUNT analytics — the paper's Fig. 2 two-key scenario.
//!
//! A million geotagged points (synthetic OSM stand-in); the dashboard
//! needs "how many points in this viewport?" at interactive latency for
//! arbitrary map rectangles. The 2-D PolyFit quadtree answers each
//! viewport with four polynomial evaluations, with an aggregate-R-tree
//! fallback when a 1%-relative certificate cannot be established.
//!
//! Run with: `cargo run --release --example geo_heatmap`

use std::time::Instant;

use polyfit_suite::data::{generate_osm, query_rectangles};
use polyfit_suite::exact::artree::Rect;
use polyfit_suite::exact::dataset::Point2d;
use polyfit_suite::exact::ARTree;
use polyfit_suite::polyfit::twod::{Guaranteed2dCount, Quad2dConfig};

fn main() {
    let n = 1_000_000;
    println!("generating {n} synthetic OSM points...");
    let points: Vec<Point2d> =
        generate_osm(n, 7).iter().map(|p| Point2d::new(p.u, p.v, p.w)).collect();

    let t0 = Instant::now();
    let cfg = Quad2dConfig { grid_resolution: 512, ..Default::default() };
    let driver =
        Guaranteed2dCount::with_rel_guarantee(points.clone(), 250.0, cfg).expect("build 2-D index");
    println!(
        "built quadtree in {:.2}s: {} patches, {} KB",
        t0.elapsed().as_secs_f64(),
        driver.index().num_leaves(),
        driver.index().size_bytes() / 1024,
    );
    let exact = ARTree::new(points);

    // Simulated viewports at three zoom levels.
    for (zoom, extent) in [("continent", 0.5), ("country", 0.12), ("city", 0.02)] {
        let views = query_rectangles((-180.0, 180.0, -60.0, 75.0), 200, extent, 99);
        let mut fallbacks = 0usize;
        let mut worst_rel: f64 = 0.0;
        let t = Instant::now();
        for v in &views {
            let ans = driver.query_rel(v.u_lo, v.u_hi, v.v_lo, v.v_hi, 0.01);
            fallbacks += ans.used_fallback as usize;
            let truth = exact.range_count(&Rect::new(v.u_lo, v.u_hi, v.v_lo, v.v_hi)) as f64;
            if truth > 0.0 && !ans.used_fallback {
                worst_rel = worst_rel.max((ans.value - truth).abs() / truth);
            }
        }
        let per_query_us = t.elapsed().as_nanos() as f64 / views.len() as f64 / 1e3;
        println!(
            "{zoom:>9} viewports: {per_query_us:7.1} µs/query (incl. truth check), \
             {fallbacks}/{} fallbacks, worst certified rel err {:.3}%",
            views.len(),
            worst_rel * 100.0,
        );
    }
}
