//! Workspace umbrella crate: re-exports the PolyFit reproduction crates so the
//! root-level examples and integration tests can use a single import path.

pub use polyfit;
pub use polyfit_baselines as baselines;
pub use polyfit_data as data;
pub use polyfit_exact as exact;
pub use polyfit_lp as lp;
pub use polyfit_poly as poly;
